#include "src/supervisor/protocol.h"

#include <cstring>

namespace wdg {
namespace {

void PutU8(std::string& out, uint8_t v) { out.push_back(static_cast<char>(v)); }

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string& out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

// Cursor over a payload; all Take* return false on underrun.
struct Cursor {
  std::string_view data;
  size_t pos = 0;

  bool TakeU8(uint8_t& v) {
    if (pos + 1 > data.size()) return false;
    v = static_cast<uint8_t>(data[pos++]);
    return true;
  }
  bool TakeU32(uint32_t& v) {
    if (pos + 4 > data.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data[pos + i])) << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool TakeU64(uint64_t& v) {
    if (pos + 8 > data.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data[pos + i])) << (8 * i);
    }
    pos += 8;
    return true;
  }
  bool TakeString(std::string& v) {
    uint32_t len = 0;
    if (!TakeU32(len)) return false;
    if (pos + len > data.size()) return false;
    v.assign(data.substr(pos, len));
    pos += len;
    return true;
  }
};

bool ValidType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(FrameType::kSubscribe) &&
         raw <= static_cast<uint8_t>(FrameType::kUnsubscribeAck);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kSubscribe: return "subscribe";
    case FrameType::kSubscribeAck: return "subscribe-ack";
    case FrameType::kKick: return "kick";
    case FrameType::kKickAck: return "kick-ack";
    case FrameType::kWarn: return "warn";
    case FrameType::kUnsubscribe: return "unsubscribe";
    case FrameType::kUnsubscribeAck: return "unsubscribe-ack";
  }
  return "unknown";
}

std::string EncodeFrame(const Frame& frame) {
  std::string payload;
  switch (frame.type) {
    case FrameType::kSubscribe:
      PutString(payload, frame.name);
      PutU64(payload, static_cast<uint64_t>(frame.deadline));
      break;
    case FrameType::kSubscribeAck:
      PutU64(payload, frame.client_id);
      PutU64(payload, static_cast<uint64_t>(frame.deadline));
      break;
    case FrameType::kKick:
    case FrameType::kKickAck:
      PutU64(payload, frame.seq);
      break;
    case FrameType::kWarn:
      PutString(payload, frame.message);
      break;
    case FrameType::kUnsubscribe:
    case FrameType::kUnsubscribeAck:
      break;
  }
  std::string out;
  out.reserve(payload.size() + 5);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU8(out, static_cast<uint8_t>(frame.type));
  out.append(payload);
  return out;
}

Result<std::optional<Frame>> FrameReader::Next() {
  if (poisoned_) {
    return CorruptionError("frame stream poisoned by earlier malformed frame");
  }
  if (buffer_.size() < 5) {
    return std::optional<Frame>(std::nullopt);
  }
  Cursor header{buffer_, 0};
  uint32_t payload_len = 0;
  uint8_t raw_type = 0;
  header.TakeU32(payload_len);
  header.TakeU8(raw_type);
  if (payload_len > kMaxPayload) {
    poisoned_ = true;
    return CorruptionError("frame payload length " + std::to_string(payload_len) +
                           " exceeds protocol maximum");
  }
  if (!ValidType(raw_type)) {
    poisoned_ = true;
    return CorruptionError("unknown frame type " + std::to_string(raw_type));
  }
  if (buffer_.size() < 5 + static_cast<size_t>(payload_len)) {
    return std::optional<Frame>(std::nullopt);  // torn frame: wait for more bytes
  }
  Cursor body{std::string_view(buffer_).substr(5, payload_len), 0};
  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  bool ok = true;
  switch (frame.type) {
    case FrameType::kSubscribe: {
      uint64_t deadline = 0;
      ok = body.TakeString(frame.name) && body.TakeU64(deadline);
      frame.deadline = static_cast<DurationNs>(deadline);
      break;
    }
    case FrameType::kSubscribeAck: {
      uint64_t deadline = 0;
      ok = body.TakeU64(frame.client_id) && body.TakeU64(deadline);
      frame.deadline = static_cast<DurationNs>(deadline);
      break;
    }
    case FrameType::kKick:
    case FrameType::kKickAck:
      ok = body.TakeU64(frame.seq);
      break;
    case FrameType::kWarn:
      ok = body.TakeString(frame.message);
      break;
    case FrameType::kUnsubscribe:
    case FrameType::kUnsubscribeAck:
      break;
  }
  if (!ok) {
    poisoned_ = true;
    return CorruptionError(std::string("truncated payload in ") +
                           FrameTypeName(frame.type) + " frame");
  }
  buffer_.erase(0, 5 + payload_len);
  return std::optional<Frame>(std::move(frame));
}

}  // namespace wdg
