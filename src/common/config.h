// String-keyed configuration store with typed accessors.
// AutoWatchdog's vulnerable-operation policy and the eval campaign parameters
// are carried through this.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace wdg {

class ConfigStore {
 public:
  ConfigStore() = default;

  void Set(const std::string& key, const std::string& value);

  // Parses "a=1,b=two,c=3.5" (commas separate entries, '=' separates k/v).
  void ParseInline(std::string_view text);

  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;
  bool Has(const std::string& key) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> entries_;
};

}  // namespace wdg
