#include "src/common/strings.h"

#include <cstdio>

namespace wdg {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StrTrim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StrStartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

bool SitePatternMatches(std::string_view pattern, std::string_view site) {
  if (pattern == "*") {
    return true;
  }
  if (!pattern.empty() && pattern.back() == '*') {
    return StrStartsWith(site, pattern.substr(0, pattern.size() - 1));
  }
  return pattern == site;
}

}  // namespace wdg
