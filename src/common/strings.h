// Small string helpers (libstdc++ 12 lacks std::format).
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace wdg {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Split on a delimiter; empty tokens preserved.
std::vector<std::string> StrSplit(std::string_view text, char delim);

// Trim ASCII whitespace from both ends.
std::string_view StrTrim(std::string_view text);

bool StrStartsWith(std::string_view text, std::string_view prefix);

// Glob-free prefix match used by fault-site patterns: pattern "disk.*" matches
// any site starting with "disk.", pattern "*" matches everything, otherwise
// exact match.
bool SitePatternMatches(std::string_view pattern, std::string_view site);

// Escapes text for embedding inside a JSON string literal (quotes,
// backslashes, control characters). Does not add the surrounding quotes.
std::string JsonEscape(std::string_view text);

}  // namespace wdg
