// Result<T>: value-or-Status, the companion of status.h (cf. absl::StatusOr).
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace wdg {

template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return value;` or `return SomeError(...)`.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace wdg

// `WDG_ASSIGN_OR_RETURN(auto x, Foo())` — unpack or propagate the error.
#define WDG_ASSIGN_OR_RETURN(decl, expr)              \
  decl = ({                                           \
    auto _wdg_result = (expr);                        \
    if (!_wdg_result.ok()) return _wdg_result.status(); \
    std::move(_wdg_result).value();                   \
  })
