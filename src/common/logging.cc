#include "src/common/logging.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace wdg {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace {
const char* Basename(const std::string& path) {
  const size_t pos = path.find_last_of('/');
  return pos == std::string::npos ? path.c_str() : path.c_str() + pos + 1;
}
}  // namespace

void StderrSink::Write(const LogRecord& record) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LogLevelName(record.level), Basename(record.file),
               record.line, record.message.c_str());
}

void CaptureSink::Write(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(record);
}

std::vector<LogRecord> CaptureSink::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

bool CaptureSink::Contains(const std::string& substring) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(records_.begin(), records_.end(), [&](const LogRecord& r) {
    return r.message.find(substring) != std::string::npos;
  });
}

void CaptureSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

Logger::Logger() : min_level_(LogLevel::kWarn) { sinks_.push_back(&stderr_sink_); }

Logger& Logger::Instance() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::AddSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(sink);
}

void Logger::RemoveSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void Logger::Dispatch(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  for (LogSink* sink : sinks_) {
    sink->Write(record);
  }
}

LogMessage::~LogMessage() {
  LogRecord record{level_, file_, line_, stream_.str()};
  Logger::Instance().Dispatch(record);
}

}  // namespace wdg
