// CRC32 (IEEE 802.3 polynomial, table-driven). Used for partition/sstable
// integrity checks — the "fsck-like" safety checks mimic checkers run.
#pragma once

#include <cstdint>
#include <string_view>

namespace wdg {

uint32_t Crc32(std::string_view data);
uint32_t Crc32Extend(uint32_t crc, std::string_view data);

}  // namespace wdg
