// Threading primitives shared by the simulator and the monitored systems.
// All blocking here is deadline- and shutdown-aware: nothing in this codebase
// blocks forever unless a fault was *injected* to make it do so.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "src/common/clock.h"

namespace wdg {

// Cooperative stop signal with blocking wait.
class StopFlag {
 public:
  void Request() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

  bool Requested() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stopped_;
  }

  // Returns true if stop was requested within the wait window.
  bool WaitFor(DurationNs ns) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::nanoseconds(ns), [&] { return stopped_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
};

// MPMC bounded queue; Push/Pop block with timeouts and honor Shutdown.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  // Returns false on timeout or shutdown.
  bool Push(T item, DurationNs timeout = Sec(3600)) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_full_.wait_for(lock, std::chrono::nanoseconds(timeout),
                            [&] { return shutdown_ || items_.size() < capacity_; })) {
      return false;
    }
    if (shutdown_) {
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Returns nullopt on timeout or shutdown-with-empty-queue.
  std::optional<T> Pop(DurationNs timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_empty_.wait_for(lock, std::chrono::nanoseconds(timeout),
                             [&] { return shutdown_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;  // shutdown
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool shutdown() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shutdown_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool shutdown_ = false;
};

// std::thread wrapper that joins on destruction (and never detaches).
class JoiningThread {
 public:
  JoiningThread() = default;
  template <typename F>
  explicit JoiningThread(F&& fn) : thread_(std::forward<F>(fn)) {}
  JoiningThread(JoiningThread&&) = default;
  JoiningThread& operator=(JoiningThread&& other) {
    Join();
    thread_ = std::move(other.thread_);
    return *this;
  }
  ~JoiningThread() { Join(); }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }
  bool joinable() const { return thread_.joinable(); }

 private:
  std::thread thread_;
};

}  // namespace wdg
