// Threading primitives shared by the simulator and the monitored systems.
// All blocking here is deadline- and shutdown-aware: nothing in this codebase
// blocks forever unless a fault was *injected* to make it do so.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"

namespace wdg {

// Cooperative stop signal with blocking wait.
class StopFlag {
 public:
  void Request() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

  bool Requested() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stopped_;
  }

  // Returns true if stop was requested within the wait window.
  bool WaitFor(DurationNs ns) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::nanoseconds(ns), [&] { return stopped_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
};

// MPMC bounded queue; Push/Pop block with timeouts and honor Shutdown.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  // Returns false on timeout or shutdown.
  bool Push(T item, DurationNs timeout = Sec(3600)) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_full_.wait_for(lock, std::chrono::nanoseconds(timeout),
                            [&] { return shutdown_ || items_.size() < capacity_; })) {
      return false;
    }
    if (shutdown_) {
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Returns nullopt on timeout or shutdown-with-empty-queue.
  std::optional<T> Pop(DurationNs timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_empty_.wait_for(lock, std::chrono::nanoseconds(timeout),
                             [&] { return shutdown_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;  // shutdown
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool shutdown() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shutdown_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool shutdown_ = false;
};

// Auto-reset notification. WaitFor returns true when Notify was called
// (including a Notify that raced ahead of the wait), false on timeout.
class Event {
 public:
  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      signaled_ = true;
    }
    cv_.notify_all();
  }

  bool WaitFor(DurationNs ns) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool signaled =
        cv_.wait_for(lock, std::chrono::nanoseconds(ns), [&] { return signaled_; });
    signaled_ = false;
    return signaled;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool signaled_ = false;
};

// std::thread wrapper that joins on destruction (and never detaches).
class JoiningThread {
 public:
  JoiningThread() = default;
  template <typename F>
  explicit JoiningThread(F&& fn) : thread_(std::forward<F>(fn)) {}
  JoiningThread(JoiningThread&&) = default;
  JoiningThread& operator=(JoiningThread&& other) {
    Join();
    thread_ = std::move(other.thread_);
    return *this;
  }
  ~JoiningThread() { Join(); }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }
  bool joinable() const { return thread_.joinable(); }

 private:
  std::thread thread_;
};

// Resizable pool of long-lived workers draining a bounded task queue.
//
// Each submitted task gets a ticket. A caller that decides a task is wedged
// calls AbandonIfRunning(ticket): the worker executing it is *abandoned* —
// its thread leaves the active set, parked on a drain list until Stop, and a
// replacement worker is spawned (up to the current target) — so pool capacity
// never shrinks while the hung task blocks only itself. This is the execution
// half of the watchdog's §3.2 guarantee (a hung checker is detected, never
// waited on), but the primitive is generic.
//
// The pool size is a *target*, not a constant: SetTargetWorkers grows the
// active set immediately and shrinks it cooperatively — a worker retires only
// between tasks (after an idle queue wait, or after finishing a task with the
// queue empty), never mid-task, so resizing can't lose or interrupt work.
// Retired threads are parked like abandoned ones and joined at Stop.
//
// The queue is a fixed ring owned by the pool (no per-node heap traffic), and
// every bookkeeping structure is pre-sized, so steady-state submit/dispatch
// performs zero allocations. Each item carries an opaque `tag` the submitter
// can use to re-route ownership when an item moves between pools: StealFrom
// pops queued-but-unclaimed items from the *back* of a sibling pool's ring
// into this one, re-ticketing them under both locks (own lock first, sibling
// via try_lock — contention skips the steal rather than risking the A<->B
// deadlock).
//
// Stop() contract: the caller must first unblock anything that could keep an
// abandoned task hung forever (the watchdog driver runs release_on_stop);
// Stop then discards still-queued tasks and joins every thread ever spawned.
class WorkerPool {
 public:
  struct Options {
    int workers = 4;
    size_t queue_capacity = 256;
  };
  using Task = std::function<void()>;

  explicit WorkerPool(Options options)
      : options_(options),
        capacity_(options.queue_capacity == 0 ? 1 : options.queue_capacity),
        target_(options.workers < 0 ? 0 : options.workers) {
    ring_.resize(capacity_);
    claims_.reserve(256);
  }
  ~WorkerPool() { Stop(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void Start() {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      return;
    }
    started_ = true;
    while (static_cast<int>(workers_.size()) < target_) {
      SpawnWorkerLocked();
    }
  }

  // Resizes the pool toward `n` workers. Growth spawns immediately; shrink is
  // cooperative (workers retire between tasks once they notice the pool is
  // over target), so active_workers() converges to the target rather than
  // jumping. Safe to call at any time, including before Start().
  void SetTargetWorkers(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    target_ = n < 0 ? 0 : n;
    if (!started_ || stopping_) {
      return;
    }
    while (static_cast<int>(workers_.size()) < target_) {
      SpawnWorkerLocked();
    }
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!started_ || stopping_) {
        return;
      }
      stopping_ = true;
      // Discard tasks that never dispatched; their submitters are gone.
      while (count_ > 0) {
        PopFrontLocked();
      }
    }
    not_empty_.notify_all();
    // Join active workers first, then abandoned ones (whose hung tasks the
    // caller is expected to have unblocked before calling Stop).
    std::vector<std::unique_ptr<Worker>> to_join;
    {
      std::lock_guard<std::mutex> lock(mu_);
      to_join.swap(workers_);
      workers_gauge_.store(0, std::memory_order_relaxed);
    }
    to_join.clear();  // JoiningThread dtor joins
    {
      std::lock_guard<std::mutex> lock(mu_);
      to_join.swap(drained_);
    }
    to_join.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      to_join.swap(retired_);
    }
    to_join.clear();
  }

  // Reserves a ticket without submitting anything. Lets the submitter publish
  // the ticket into its own bookkeeping *before* the task becomes runnable,
  // so a completion can never observe an unset ticket.
  uint64_t ReserveTicket() {
    return next_ticket_.fetch_add(1, std::memory_order_relaxed);
  }

  // Non-blocking enqueue; nullopt when the queue is full (backpressure) or
  // the pool is stopped. The ticket identifies the task for AbandonIfRunning.
  std::optional<uint64_t> TrySubmit(Task task, void* tag = nullptr) {
    const uint64_t ticket = ReserveTicket();
    if (!TrySubmitTicketed(ticket, std::move(task), tag)) {
      return std::nullopt;
    }
    return ticket;
  }

  // TrySubmit with a caller-reserved ticket (see ReserveTicket).
  bool TrySubmitTicketed(uint64_t ticket, Task task, void* tag = nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!started_ || stopping_ || count_ == capacity_) {
        return false;
      }
      PushBackLocked(Item{ticket, std::move(task), tag});
    }
    not_empty_.notify_one();
    return true;
  }

  // Steals up to `max_items` queued-but-unclaimed tasks from the back of
  // `victim`'s ring into this pool's ring. Only an *idle* pool steals (own
  // queue must be empty); the victim's lock is try-acquired so contention
  // skips the steal instead of deadlocking. Each stolen item is re-ticketed
  // from this pool's counter and `mutate(tag, new_ticket)` runs under both
  // locks — before the item is runnable here, after it stopped being runnable
  // there — so the submitter can atomically re-route abandon/ownership state.
  // Returns the number of items stolen.
  template <typename Mutator>
  size_t StealFrom(WorkerPool& victim, size_t max_items, Mutator&& mutate) {
    if (&victim == this || max_items == 0) {
      return 0;
    }
    std::unique_lock<std::mutex> self_lock(mu_);
    if (!started_ || stopping_ || count_ != 0) {
      return 0;
    }
    std::unique_lock<std::mutex> victim_lock(victim.mu_, std::try_to_lock);
    if (!victim_lock.owns_lock() || !victim.started_ || victim.stopping_) {
      return 0;
    }
    size_t stolen = 0;
    while (stolen < max_items && victim.count_ > 0 && count_ < capacity_) {
      Item item = victim.PopBackLocked();
      item.ticket = ReserveTicket();
      mutate(item.tag, item.ticket);
      PushBackLocked(std::move(item));
      ++stolen;
    }
    if (stolen > 0) {
      not_empty_.notify_all();
    }
    return stolen;
  }

  // If `ticket`'s task is still executing, abandon its worker (park the
  // thread, spawn a replacement) and return true. False when the task already
  // completed — the caller should re-check its completion state.
  bool AbandonIfRunning(uint64_t ticket) {
    std::lock_guard<std::mutex> lock(mu_);
    Worker* worker = nullptr;
    for (size_t i = 0; i < claims_.size(); ++i) {
      if (claims_[i].ticket == ticket) {
        worker = claims_[i].worker;
        claims_[i] = claims_.back();
        claims_.pop_back();
        busy_gauge_.store(static_cast<int>(claims_.size()),
                          std::memory_order_relaxed);
        break;
      }
    }
    if (worker == nullptr) {
      return false;
    }
    worker->abandoned = true;
    for (auto wit = workers_.begin(); wit != workers_.end(); ++wit) {
      if (wit->get() == worker) {
        drained_.push_back(std::move(*wit));
        workers_.erase(wit);
        workers_gauge_.store(static_cast<int>(workers_.size()),
                             std::memory_order_relaxed);
        break;
      }
    }
    abandoned_.fetch_add(1, std::memory_order_relaxed);
    // The respawn restores capacity but counts against the current target, so
    // abandonment can never push the pool past what the resizer allows.
    if (!stopping_ && static_cast<int>(workers_.size()) < target_) {
      SpawnWorkerLocked();
    }
    return true;
  }

  int configured_workers() const { return options_.workers; }
  int target_workers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return target_;
  }
  int active_workers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(workers_.size());
  }
  size_t queue_capacity() const { return capacity_; }
  size_t QueueDepth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  int BusyCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(claims_.size());
  }
  // Relaxed-read mirrors of QueueDepth/BusyCount/active_workers, written
  // under mu_ at every mutation. Exact only at the instant of the store —
  // for the driver's per-pass cross-shard scans (steal candidates, fleet
  // utilization), where taking every sibling pool's mutex for a mere hint
  // turned the scan into a lock convoy. Anything that *moves* work still
  // revalidates under the real lock (StealFrom).
  size_t QueueDepthHint() const {
    return depth_gauge_.load(std::memory_order_relaxed);
  }
  int BusyCountHint() const {
    return busy_gauge_.load(std::memory_order_relaxed);
  }
  int ActiveWorkersHint() const {
    return workers_gauge_.load(std::memory_order_relaxed);
  }
  // Threads ever created (initial workers + respawns + scale-up spawns).
  int64_t threads_spawned() const { return threads_spawned_.load(std::memory_order_relaxed); }
  int64_t abandoned_count() const { return abandoned_.load(std::memory_order_relaxed); }
  int64_t retired_count() const { return retired_total_.load(std::memory_order_relaxed); }

 private:
  struct Worker {
    JoiningThread thread;
    bool abandoned = false;  // guarded by mu_
  };
  struct Item {
    uint64_t ticket = 0;
    Task task;
    void* tag = nullptr;
  };
  struct Claim {
    uint64_t ticket = 0;
    Worker* worker = nullptr;
  };

  void PushBackLocked(Item item) {
    ring_[(head_ + count_) % capacity_] = std::move(item);
    ++count_;
    depth_gauge_.store(count_, std::memory_order_relaxed);
  }

  Item PopFrontLocked() {
    Item item = std::move(ring_[head_]);
    ring_[head_] = Item{};
    head_ = (head_ + 1) % capacity_;
    --count_;
    depth_gauge_.store(count_, std::memory_order_relaxed);
    return item;
  }

  Item PopBackLocked() {
    const size_t idx = (head_ + count_ - 1) % capacity_;
    Item item = std::move(ring_[idx]);
    ring_[idx] = Item{};
    --count_;
    depth_gauge_.store(count_, std::memory_order_relaxed);
    return item;
  }

  void SpawnWorkerLocked() {
    auto worker = std::make_unique<Worker>();
    Worker* raw = worker.get();
    threads_spawned_.fetch_add(1, std::memory_order_relaxed);
    worker->thread = JoiningThread([this, raw] { WorkerLoop(raw); });
    workers_.push_back(std::move(worker));
    workers_gauge_.store(static_cast<int>(workers_.size()),
                         std::memory_order_relaxed);
  }

  // Moves this worker to the retired list if the pool is over target. Only
  // called between tasks, so a retirement never interrupts work.
  bool RetireIfOverTargetLocked(Worker* self) {
    if (stopping_ || self->abandoned ||
        static_cast<int>(workers_.size()) <= target_) {
      return false;
    }
    for (auto it = workers_.begin(); it != workers_.end(); ++it) {
      if (it->get() == self) {
        retired_.push_back(std::move(*it));
        workers_.erase(it);
        workers_gauge_.store(static_cast<int>(workers_.size()),
                             std::memory_order_relaxed);
        retired_total_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  void WorkerLoop(Worker* self) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      const bool woke = not_empty_.wait_for(
          lock, std::chrono::nanoseconds(Ms(250)),
          [&] { return stopping_ || count_ > 0; });
      if (stopping_) {
        return;
      }
      if (!woke) {
        if (RetireIfOverTargetLocked(self)) {
          return;  // idle and over target: shrink the pool
        }
        continue;
      }
      Item item = PopFrontLocked();
      claims_.push_back(Claim{item.ticket, self});
      busy_gauge_.store(static_cast<int>(claims_.size()),
                        std::memory_order_relaxed);
      lock.unlock();
      item.task();
      lock.lock();
      for (size_t i = 0; i < claims_.size(); ++i) {
        if (claims_[i].ticket == item.ticket) {
          claims_[i] = claims_.back();
          claims_.pop_back();
          busy_gauge_.store(static_cast<int>(claims_.size()),
                            std::memory_order_relaxed);
          break;
        }
      }
      if (self->abandoned) {
        return;  // a replacement already took this worker's slot
      }
      if (count_ == 0 && RetireIfOverTargetLocked(self)) {
        return;  // drained backlog and over target: shrink promptly
      }
    }
  }

  const Options options_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  bool started_ = false;
  bool stopping_ = false;
  int target_ = 0;  // desired active worker count; guarded by mu_
  std::atomic<uint64_t> next_ticket_{1};
  std::vector<Item> ring_;  // fixed ring buffer; head_/count_ guarded by mu_
  size_t head_ = 0;
  size_t count_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;  // active
  std::vector<std::unique_ptr<Worker>> drained_;  // abandoned, joined at Stop
  std::vector<std::unique_ptr<Worker>> retired_;  // shrunk away, joined at Stop
  std::vector<Claim> claims_;                     // ticket -> executing worker
  // Lock-free gauges mirroring count_ / claims_.size() / workers_.size();
  // see QueueDepthHint.
  std::atomic<size_t> depth_gauge_{0};
  std::atomic<int> busy_gauge_{0};
  std::atomic<int> workers_gauge_{0};
  std::atomic<int64_t> threads_spawned_{0};
  std::atomic<int64_t> abandoned_{0};
  std::atomic<int64_t> retired_total_{0};
};

}  // namespace wdg
