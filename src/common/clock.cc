#include "src/common/clock.h"

#include <chrono>
#include <thread>

namespace wdg {

bool Clock::WaitUntil(TimeNs deadline, const std::function<bool()>& pred, DurationNs poll) {
  while (true) {
    if (pred()) {
      return true;
    }
    if (NowNs() >= deadline) {
      return pred();
    }
    SleepFor(poll);
  }
}

RealClock& RealClock::Instance() {
  static RealClock* clock = new RealClock();
  return *clock;
}

TimeNs RealClock::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealClock::SleepFor(DurationNs ns) {
  if (ns > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }
}

SimClock::~SimClock() { Shutdown(); }

TimeNs SimClock::NowNs() {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void SimClock::SleepFor(DurationNs ns) {
  std::unique_lock<std::mutex> lock(mu_);
  const TimeNs deadline = now_ + ns;
  ++sleepers_;
  cv_.wait(lock, [&] { return shutdown_ || now_ >= deadline; });
  --sleepers_;
}

void SimClock::Advance(DurationNs ns) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += ns;
  }
  cv_.notify_all();
}

void SimClock::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

int SimClock::sleeper_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sleepers_;
}

}  // namespace wdg
