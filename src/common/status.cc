#include "src/common/status.h"

namespace wdg {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

Status TimeoutError(std::string_view msg) {
  return Status(StatusCode::kTimeout, std::string(msg));
}
Status UnavailableError(std::string_view msg) {
  return Status(StatusCode::kUnavailable, std::string(msg));
}
Status NotFoundError(std::string_view msg) {
  return Status(StatusCode::kNotFound, std::string(msg));
}
Status CorruptionError(std::string_view msg) {
  return Status(StatusCode::kCorruption, std::string(msg));
}
Status IoError(std::string_view msg) { return Status(StatusCode::kIoError, std::string(msg)); }
Status InvalidArgumentError(std::string_view msg) {
  return Status(StatusCode::kInvalidArgument, std::string(msg));
}
Status ResourceExhaustedError(std::string_view msg) {
  return Status(StatusCode::kResourceExhausted, std::string(msg));
}
Status AbortedError(std::string_view msg) {
  return Status(StatusCode::kAborted, std::string(msg));
}
Status FailedPreconditionError(std::string_view msg) {
  return Status(StatusCode::kFailedPrecondition, std::string(msg));
}
Status AlreadyExistsError(std::string_view msg) {
  return Status(StatusCode::kAlreadyExists, std::string(msg));
}
Status InternalError(std::string_view msg) {
  return Status(StatusCode::kInternal, std::string(msg));
}
Status UnimplementedError(std::string_view msg) {
  return Status(StatusCode::kUnimplemented, std::string(msg));
}

}  // namespace wdg
