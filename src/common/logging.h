// Minimal leveled logger with pluggable sinks.
//
//   WDG_LOG(kInfo) << "flushed " << n << " entries";
//
// Tests install a CaptureSink to assert on emitted records; the default sink
// writes to stderr. Global min-level gating keeps disabled levels cheap.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace wdg {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

const char* LogLevelName(LogLevel level);

struct LogRecord {
  LogLevel level;
  std::string file;
  int line;
  std::string message;
};

class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

// Writes "[LEVEL file:line] message" to stderr.
class StderrSink : public LogSink {
 public:
  void Write(const LogRecord& record) override;
};

// Buffers records for test assertions.
class CaptureSink : public LogSink {
 public:
  void Write(const LogRecord& record) override;

  std::vector<LogRecord> records() const;
  bool Contains(const std::string& substring) const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
};

class Logger {
 public:
  // Process-wide logger. Starts with a StderrSink at kWarn so tests stay quiet
  // unless something is actually wrong.
  static Logger& Instance();

  void set_min_level(LogLevel level) { min_level_.store(level, std::memory_order_relaxed); }
  LogLevel min_level() const { return min_level_.load(std::memory_order_relaxed); }
  bool Enabled(LogLevel level) const { return level >= min_level(); }

  // Sinks are owned by the caller and must outlive their registration.
  void AddSink(LogSink* sink);
  void RemoveSink(LogSink* sink);

  void Dispatch(const LogRecord& record);

 private:
  Logger();

  std::atomic<LogLevel> min_level_;
  std::mutex mu_;
  std::vector<LogSink*> sinks_;
  StderrSink stderr_sink_;
};

// RAII stream that dispatches on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace wdg

#define WDG_LOG(level)                                            \
  if (!::wdg::Logger::Instance().Enabled(::wdg::LogLevel::level)) \
    ;                                                             \
  else                                                            \
    ::wdg::LogMessage(::wdg::LogLevel::level, __FILE__, __LINE__)
