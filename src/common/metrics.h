// Process-local metrics: counters, gauges, latency histograms.
//
// The monitored systems (kvs, minizk) export their health indicators here;
// signal-type watchdog checkers and the ResourceSignalDetector baseline read
// them — exactly the "system health indicators" of Table 2's middle row.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"

namespace wdg {

class Counter {
 public:
  void Increment(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ = value;
  }
  void Add(double delta) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ += delta;
  }
  double Value() const {
    std::lock_guard<std::mutex> lock(mu_);
    return value_;
  }

 private:
  mutable std::mutex mu_;
  double value_ = 0;
};

// Fixed-size reservoir histogram; good enough for p50/p99 over bench runs.
class Histogram {
 public:
  explicit Histogram(size_t reservoir_capacity = 4096) : capacity_(reservoir_capacity) {
    reservoir_.reserve(capacity_);  // Record never reallocates after this
  }

  void Record(double value);

  int64_t count() const;
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  // Nearest-rank percentile over the reservoir; 0 if empty. q in [0,100].
  double Percentile(double q) const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<double> reservoir_;
  uint64_t rng_state_ = 0x853c49e6748fea9bULL;
};

// Named registry. Instances are created on first use and live as long as the
// registry; returned pointers are stable.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Non-creating lookup: nullptr when the gauge was never published. Lets
  // monitors distinguish "metric reads 0" from "nobody is exporting this
  // metric" without materialising a permanently-zero gauge.
  Gauge* FindGauge(const std::string& name) const;

  // Counter and gauge values by name (histograms export count/mean/p99).
  std::map<std::string, double> Snapshot() const;

  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// RAII latency recorder.
class ScopedLatency {
 public:
  ScopedLatency(Histogram* hist, Clock& clock)
      : hist_(hist), clock_(clock), start_(clock.NowNs()) {}
  ~ScopedLatency() {
    if (hist_ != nullptr) {
      hist_->Record(static_cast<double>(clock_.NowNs() - start_));
    }
  }

 private:
  Histogram* hist_;
  Clock& clock_;
  TimeNs start_;
};

}  // namespace wdg
