#include "src/common/config.h"

#include <cstdlib>

#include "src/common/strings.h"

namespace wdg {

void ConfigStore::Set(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = value;
}

void ConfigStore::ParseInline(std::string_view text) {
  for (const std::string& entry : StrSplit(text, ',')) {
    const std::string_view trimmed = StrTrim(entry);
    if (trimmed.empty()) {
      continue;
    }
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      Set(std::string(trimmed), "true");
    } else {
      Set(std::string(StrTrim(trimmed.substr(0, eq))), std::string(StrTrim(trimmed.substr(eq + 1))));
    }
  }
}

std::string ConfigStore::GetString(const std::string& key, const std::string& fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

int64_t ConfigStore::GetInt(const std::string& key, int64_t fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return fallback;
  }
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double ConfigStore::GetDouble(const std::string& key, double fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return fallback;
  }
  return std::strtod(it->second.c_str(), nullptr);
}

bool ConfigStore::GetBool(const std::string& key, bool fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return fallback;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool ConfigStore::Has(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key) > 0;
}

}  // namespace wdg
