#include "src/common/checksum.h"

#include <array>

namespace wdg {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Extend(uint32_t crc, std::string_view data) {
  const auto& table = Table();
  uint32_t c = crc ^ 0xffffffffu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<uint8_t>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(std::string_view data) { return Crc32Extend(0, data); }

}  // namespace wdg
