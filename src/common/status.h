// Status: the error model used across every library in this repository.
//
// Modelled after absl::Status / zx_status_t: cheap value type, no exceptions
// across module boundaries. Functions that can fail return a Status (or a
// Result<T>, see result.h) and callers branch on ok().
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace wdg {

// Canonical error space. Kept deliberately small; the failure *signature*
// carried by the watchdog layer adds the richer classification.
enum class StatusCode {
  kOk = 0,
  kTimeout,             // an operation exceeded its deadline (liveness)
  kUnavailable,         // transient: resource/peer not reachable
  kNotFound,            // key/file/node does not exist
  kCorruption,          // data failed an integrity check (safety)
  kIoError,             // device-level read/write failure
  kInvalidArgument,     // caller error
  kResourceExhausted,   // out of memory/queue slots/file handles
  kAborted,             // operation cancelled, e.g. during shutdown
  kFailedPrecondition,  // system not in a state where the op is legal
  kAlreadyExists,       // create of an existing key/file/node
  kInternal,            // invariant violation inside a module
  kUnimplemented,       // feature intentionally not provided
};

// Short stable name, e.g. "TIMEOUT". Never returns nullptr.
const char* StatusCodeName(StatusCode code);

// A status code plus an optional human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "TIMEOUT: flush stalled".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Factory helpers mirroring absl's, so call sites read naturally.
Status TimeoutError(std::string_view msg);
Status UnavailableError(std::string_view msg);
Status NotFoundError(std::string_view msg);
Status CorruptionError(std::string_view msg);
Status IoError(std::string_view msg);
Status InvalidArgumentError(std::string_view msg);
Status ResourceExhaustedError(std::string_view msg);
Status AbortedError(std::string_view msg);
Status FailedPreconditionError(std::string_view msg);
Status AlreadyExistsError(std::string_view msg);
Status InternalError(std::string_view msg);
Status UnimplementedError(std::string_view msg);

}  // namespace wdg

// Early-return plumbing for Status-returning functions.
#define WDG_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::wdg::Status _wdg_status = (expr);          \
    if (!_wdg_status.ok()) return _wdg_status;   \
  } while (0)
