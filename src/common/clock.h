// Virtual time. Every module takes a Clock& so unit tests run deterministically
// on SimClock while integration tests and benches run on RealClock with
// millisecond-scale intervals (1 paper-second == 100 real milliseconds; see
// DESIGN.md "Substitutions").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

namespace wdg {

// Monotonic nanoseconds.
using TimeNs = int64_t;
using DurationNs = int64_t;

constexpr DurationNs kNsPerUs = 1000;
constexpr DurationNs kNsPerMs = 1000 * 1000;
constexpr DurationNs kNsPerSec = 1000 * 1000 * 1000;

constexpr DurationNs Us(int64_t n) { return n * kNsPerUs; }
constexpr DurationNs Ms(int64_t n) { return n * kNsPerMs; }
constexpr DurationNs Sec(int64_t n) { return n * kNsPerSec; }

// The virtual-time convention for reporting paper-scale numbers: experiments
// run 10x faster than the paper's wall clock.
constexpr double kLogicalSecondsPerRealMs = 1.0 / 100.0;
inline double ToLogicalSeconds(DurationNs real) {
  return static_cast<double>(real) / static_cast<double>(kNsPerMs) * kLogicalSecondsPerRealMs;
}

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic now.
  virtual TimeNs NowNs() = 0;

  // Block the calling thread for `ns` of this clock's time. Returns early if
  // the clock is shut down (SimClock) — callers must re-check their own stop
  // conditions after sleeping regardless.
  virtual void SleepFor(DurationNs ns) = 0;

  // Busy-friendly wait: re-evaluates `pred` until it returns true or
  // `deadline` passes. Returns the final pred value.
  bool WaitUntil(TimeNs deadline, const std::function<bool()>& pred, DurationNs poll = Ms(1));
};

// Wall-clock-backed monotonic clock (CLOCK_MONOTONIC).
class RealClock : public Clock {
 public:
  static RealClock& Instance();

  TimeNs NowNs() override;
  void SleepFor(DurationNs ns) override;
};

// Manually-advanced clock for deterministic tests. Sleepers block until
// Advance() moves now past their deadline (or Shutdown releases everyone).
class SimClock : public Clock {
 public:
  explicit SimClock(TimeNs start = 0) : now_(start) {}
  ~SimClock() override;

  TimeNs NowNs() override;
  void SleepFor(DurationNs ns) override;

  // Moves time forward and wakes sleepers whose deadlines passed.
  void Advance(DurationNs ns);
  // Releases all sleepers immediately; subsequent SleepFor calls return at once.
  void Shutdown();
  // Number of threads currently blocked in SleepFor (test synchronization aid).
  int sleeper_count() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  TimeNs now_;
  bool shutdown_ = false;
  int sleepers_ = 0;
};

}  // namespace wdg
