#include "src/common/metrics.h"

#include <algorithm>
#include <cmath>

namespace wdg {

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(value);
  } else {
    // Vitter's algorithm R with a cheap xorshift.
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    const uint64_t slot = rng_state_ % static_cast<uint64_t>(count_);
    if (slot < reservoir_.size()) {
      reservoir_[slot] = value;
    }
  }
}

int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

double Histogram::Min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::Max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::Percentile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (reservoir_.empty()) {
    return 0;
  }
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t idx = static_cast<size_t>(std::lround(rank));
  return sorted[std::min(idx, sorted.size() - 1)];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

std::map<std::string, double> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = static_cast<double>(counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    out[name + ".count"] = static_cast<double>(hist->count());
    out[name + ".mean"] = hist->Mean();
    out[name + ".p99"] = hist->Percentile(99);
  }
  return out;
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, _] : counters_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MetricsRegistry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, _] : gauges_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace wdg
