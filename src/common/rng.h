// Deterministic, seedable PRNG (SplitMix64 + xoshiro256**). Header-only.
// Used everywhere randomness is needed so experiments replay exactly.
#pragma once

#include <cstdint>

namespace wdg {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to decorrelate the xoshiro state words.
    uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t s = z;
      s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ULL;
      s = (s ^ (s >> 27)) * 0x94d049bb133111ebULL;
      word = s ^ (s >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    if (hi <= lo) {
      return lo;
    }
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextU64() % range);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace wdg
