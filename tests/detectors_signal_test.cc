// Property tests for the signal-checker suite and the fusion detector.
//
// The suite's detection logic is deliberately exposed as pure state machines
// (LeakSlopeState / ThresholdState / JitterState) so these tests can drive
// them with seeded synthetic series — leak ramps, plateaus, sawtooth churn,
// steady-state noise — and prove the fire/no-fire boundaries without a driver
// in the loop. The second half covers the checker plumbing (NotReady rather
// than silently-healthy on missing data), suite registration on a live
// driver, and the fusion score's corroboration/hysteresis/domination
// properties, including a multi-threaded OnFailure run for the TSan leg.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/detectors/fusion.h"
#include "src/detectors/signal_suite.h"
#include "src/watchdog/context.h"
#include "src/watchdog/driver.h"

namespace wdg {
namespace {

// --- LeakSlopeState ---------------------------------------------------------

TEST(LeakSlopeStateTest, MonotoneRampFiresAtMinGrowth) {
  LeakSlopeState state(5);
  EXPECT_FALSE(state.Observe(10));  // baseline
  for (int64_t v = 11; v <= 14; ++v) {
    EXPECT_FALSE(state.Observe(v)) << "growth " << v - 10 << " below min";
  }
  EXPECT_TRUE(state.Observe(15));  // +5: exactly min_growth fires
  // The run persists, so the state keeps firing — driver dedup shapes the
  // repeats into periodic re-alarms.
  EXPECT_TRUE(state.Observe(16));
  EXPECT_TRUE(state.Observe(16));
}

TEST(LeakSlopeStateTest, PlateauNeverFires) {
  LeakSlopeState state(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(state.Observe(42));
  }
}

TEST(LeakSlopeStateTest, AnyDropRebaselines) {
  LeakSlopeState state(5);
  EXPECT_FALSE(state.Observe(10));
  EXPECT_FALSE(state.Observe(14));  // +4
  EXPECT_FALSE(state.Observe(12));  // reclaim: baseline resets to 12
  EXPECT_FALSE(state.Observe(16));  // +4 from the NEW baseline
  EXPECT_EQ(state.baseline(), 12);
  EXPECT_TRUE(state.Observe(17));  // +5 from 12
}

TEST(LeakSlopeStateTest, SawtoothChurnNeverFires) {
  // Grow-collect cycles whose amplitude stays below min_growth: the shape of
  // normal compaction (tables accumulate, a merge reclaims them). Seeded so
  // ramp heights and trough depths vary across 500 cycles.
  Rng rng(7);
  LeakSlopeState state(8);
  int64_t value = 20;
  for (int cycle = 0; cycle < 500; ++cycle) {
    const int64_t ramp = rng.Uniform(1, 7);  // < min_growth of 8
    for (int64_t i = 0; i < ramp; ++i) {
      ++value;
      ASSERT_FALSE(state.Observe(value)) << "cycle " << cycle;
    }
    value -= rng.Uniform(1, ramp);  // partial or full reclaim
    ASSERT_FALSE(state.Observe(value)) << "cycle " << cycle;
  }
}

TEST(LeakSlopeStateTest, VariableStepRampStillFires) {
  // A real delete-path leak is monotone (nothing ever reclaims); uneven step
  // sizes must not confuse the run accounting.
  Rng rng(11);
  LeakSlopeState state(8);
  int64_t value = 10;
  bool fired = false;
  for (int step = 0; step < 4000 && !fired; ++step) {
    value += rng.Uniform(1, 3);  // leak
    fired = state.Observe(value);
  }
  EXPECT_TRUE(fired);
}

// --- ThresholdState ---------------------------------------------------------

TEST(ThresholdStateTest, FiresAfterConsecutiveViolations) {
  ThresholdState state(8, 3, /*fire_above=*/true);
  EXPECT_FALSE(state.Observe(12));
  EXPECT_FALSE(state.Observe(12));
  EXPECT_TRUE(state.Observe(12));  // third in a row
}

TEST(ThresholdStateTest, HealthySampleResetsTheStreak) {
  ThresholdState state(8, 3, /*fire_above=*/true);
  EXPECT_FALSE(state.Observe(12));
  EXPECT_FALSE(state.Observe(12));
  EXPECT_FALSE(state.Observe(3));   // back under the limit
  EXPECT_FALSE(state.Observe(12));  // streak restarts
  EXPECT_FALSE(state.Observe(12));
  EXPECT_TRUE(state.Observe(12));
}

TEST(ThresholdStateTest, PersistentViolationRefiresPerStreak) {
  ThresholdState state(8, 3, /*fire_above=*/true);
  int fires = 0;
  for (int i = 0; i < 12; ++i) {
    fires += state.Observe(100) ? 1 : 0;
  }
  EXPECT_EQ(fires, 4);  // every 3rd sample, not continuously
}

TEST(ThresholdStateTest, BelowModeCatchesThreadDeath) {
  // live-loop count dropping under the minimum (fire_above=false).
  ThresholdState state(5, 2, /*fire_above=*/false);
  EXPECT_FALSE(state.Observe(5));  // at the limit is healthy
  EXPECT_FALSE(state.Observe(4));
  EXPECT_TRUE(state.Observe(4));
}

TEST(ThresholdStateTest, SeededNoiseUnderLimitNeverFires) {
  Rng rng(23);
  ThresholdState state(8, 3, /*fire_above=*/true);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_FALSE(state.Observe(rng.Uniform(0, 8)));  // never ABOVE 8
  }
}

// --- JitterState ------------------------------------------------------------

TEST(JitterStateTest, AdvancingBeatNeverFires) {
  JitterState state(JitterConfig{Ms(300), Ms(50)});
  TimeNs now = Sec(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(state.Observe(now, /*beat=*/i));
    now += Ms(100);
  }
}

TEST(JitterStateTest, StaleBeatFiresOnlyAfterConfirmWindow) {
  JitterState state(JitterConfig{Ms(300), Ms(50)});
  EXPECT_FALSE(state.Observe(Sec(1), 7));
  // Unchanged but within max_gap: normal.
  EXPECT_FALSE(state.Observe(Sec(1) + Ms(200), 7));
  // Past max_gap: the FIRST stale observation only opens the confirm window.
  // This is the one-core catch-up guard — two back-to-back checker runs
  // observing one momentarily stale beat must not fire.
  EXPECT_FALSE(state.Observe(Sec(1) + Ms(400), 7));
  EXPECT_FALSE(state.Observe(Sec(1) + Ms(440), 7));  // 40ms into confirm
  EXPECT_TRUE(state.Observe(Sec(1) + Ms(460), 7));   // 60ms >= confirm
}

TEST(JitterStateTest, BeatResumeResetsEverything) {
  JitterState state(JitterConfig{Ms(300), Ms(50)});
  EXPECT_FALSE(state.Observe(Sec(1), 7));
  EXPECT_FALSE(state.Observe(Sec(1) + Ms(400), 7));  // stale, confirm opens
  EXPECT_FALSE(state.Observe(Sec(1) + Ms(450), 8));  // beat moved: full reset
  EXPECT_FALSE(state.Observe(Sec(1) + Ms(700), 8));  // within max_gap again
  EXPECT_FALSE(state.Observe(Sec(1) + Ms(800), 8));  // stale again, new window
  EXPECT_TRUE(state.Observe(Sec(1) + Ms(860), 8));
}

// --- checker plumbing -------------------------------------------------------

ContextKey<int64_t> TestKey(const char* name) {
  return ContextKey<int64_t>::Of(name);
}

TEST(KeyedSignalCheckerTest, MissingDataIsNotReadyNeverHealthy) {
  RealClock& clock = RealClock::Instance();
  const auto key = TestKey("sst.plumbing.k1");
  // Null context: NotReady.
  LeakSlopeChecker unbound("sst_unbound", "comp", clock, nullptr, key, "fds", 5,
                           FailureType::kSafetyViolation,
                           StatusCode::kResourceExhausted, {});
  EXPECT_EQ(unbound.Check().outcome, CheckOutcome::kContextNotReady);
  // Live context that never reached MarkReady: NotReady.
  CheckContext ctx("sst_plumbing_ctx");
  LeakSlopeChecker bound("sst_bound", "comp", clock, &ctx, key, "fds", 5,
                         FailureType::kSafetyViolation,
                         StatusCode::kResourceExhausted, {});
  EXPECT_EQ(bound.Check().outcome, CheckOutcome::kContextNotReady);
  // READY context where THIS key was never published: still NotReady — a
  // signal nobody feeds must not look green (the ResourceSignalDetector
  // wiring-status rule, applied to the suite).
  ctx.Set(TestKey("sst.plumbing.other"), int64_t{1});
  ctx.MarkReady(1);
  EXPECT_EQ(bound.Check().outcome, CheckOutcome::kContextNotReady);
  // And once published, samples flow.
  ctx.Set(key, int64_t{10});
  ctx.MarkReady(2);
  EXPECT_EQ(bound.Check().outcome, CheckOutcome::kPass);
}

TEST(KeyedSignalCheckerTest, LeakFailureCarriesComponentPinpoint) {
  RealClock& clock = RealClock::Instance();
  const auto key = TestKey("sst.plumbing.k2");
  CheckContext ctx("sst_pinpoint_ctx");
  LeakSlopeChecker checker("sst_fd_leak", "kvs.compaction", clock, &ctx, key,
                           "open handles", 3, FailureType::kSafetyViolation,
                           StatusCode::kResourceExhausted, {});
  int64_t seq = 0;
  for (int64_t v : {10, 11, 12}) {
    ctx.Set(key, v);
    ctx.MarkReady(++seq);
    EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);
  }
  ctx.Set(key, int64_t{13});
  ctx.MarkReady(++seq);
  const CheckResult result = checker.Check();
  ASSERT_EQ(result.outcome, CheckOutcome::kFail);
  EXPECT_EQ(result.signature.type, FailureType::kSafetyViolation);
  EXPECT_EQ(result.signature.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(result.signature.location.component, "kvs.compaction");
  EXPECT_EQ(result.signature.location.Level(), LocalizationLevel::kComponent);
}

// --- suite on a live driver -------------------------------------------------

class CollectingListener : public FailureListener {
 public:
  void OnFailure(const FailureSignature& signature) override {
    std::lock_guard<std::mutex> lock(mu_);
    signatures_.push_back(signature);
  }
  std::vector<FailureSignature> Signatures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return signatures_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<FailureSignature> signatures_;
};

TEST(SignalSuiteDriverTest, SteadyStateQuietThenStalledBeatFires) {
  RealClock& clock = RealClock::Instance();
  CheckContext ctx("sst_driver_ctx");
  const SignalSuiteKeys keys{TestKey("sst.drv.fds"),   TestKey("sst.drv.rss"),
                             TestKey("sst.drv.queue"), TestKey("sst.drv.disk"),
                             TestKey("sst.drv.live"),  TestKey("sst.drv.beat")};
  SignalSuiteOptions options;
  options.interval = Ms(15);
  options.name_prefix = "sst_drv_";
  options.beat_component = "sst.listener";
  // Generous gap so a one-core scheduler stall during the steady phase can't
  // fake a stalled beat; the publisher ticks at 30ms against a 400ms gap.
  options.jitter = JitterConfig{Ms(400), Ms(50)};

  WatchdogDriver driver(clock);
  CollectingListener listener;
  driver.AddListener(&listener);
  ASSERT_TRUE(RegisterSignalSuite(driver, clock, &ctx, keys, options).ok());

  std::atomic<bool> keep_beating{true};
  std::thread publisher([&] {
    int64_t seq = 0;
    while (keep_beating.load()) {
      ctx.Set(keys.open_handles, int64_t{3});
      ctx.Set(keys.rss_bytes, int64_t{4096});
      ctx.Set(keys.queue_depth, int64_t{0});
      ctx.Set(keys.disk_lat_ns, Us(50));
      ctx.Set(keys.live_threads, int64_t{5});
      ctx.Set(keys.last_beat_ns, clock.NowNs());
      ctx.MarkReady(++seq);
      clock.SleepFor(Ms(30));
    }
  });
  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(400));
  EXPECT_TRUE(listener.Signatures().empty()) << "steady state false fire: "
      << listener.Signatures().front().ToString();

  // Kill the publisher: every key goes quiet. The five subscribed checkers
  // are epoch-skipped (a dormant key is not a failure), but the UNsubscribed
  // jitter checker keeps running and calls the stalled beat.
  keep_beating.store(false);
  publisher.join();
  clock.SleepFor(Ms(700));
  ASSERT_TRUE(driver.Stop().ok());

  const std::vector<FailureSignature> alarms = listener.Signatures();
  ASSERT_FALSE(alarms.empty());
  for (const FailureSignature& sig : alarms) {
    EXPECT_EQ(sig.checker_name, "sst_drv_kick_jitter") << sig.ToString();
    EXPECT_EQ(sig.location.component, "sst.listener");
    EXPECT_EQ(sig.type, FailureType::kLivenessTimeout);
    EXPECT_EQ(sig.checker_kind, "signal");
  }
}

// --- fusion -----------------------------------------------------------------

FailureSignature Alarm(const std::string& checker, const std::string& kind,
                       const std::string& component, TimeNs at) {
  FailureSignature sig;
  sig.checker_name = checker;
  sig.checker_kind = kind;
  sig.location.component = component;
  sig.detect_time = at;
  return sig;
}

TEST(FusionDetectorTest, FamilyOfMapsKinds) {
  EXPECT_EQ(FusionDetector::FamilyOf("probe"), kFamilyProbe);
  EXPECT_EQ(FusionDetector::FamilyOf("signal"), kFamilySignal);
  EXPECT_EQ(FusionDetector::FamilyOf("mimic"), kFamilyMimic);
  EXPECT_EQ(FusionDetector::FamilyOf("heartbeat"), 0u);  // unknown: no weight
}

TEST(FusionDetectorTest, SingleMimicAlarmFiresWithPinpoint) {
  FusionDetector fusion;  // mimic weight 0.9 >= fire threshold 0.7
  fusion.OnFailure(Alarm("wal_mimic", "mimic", "kvs.wal", Sec(1)));
  ASSERT_EQ(fusion.Fires().size(), 1u);
  EXPECT_EQ(fusion.Fires()[0].component, "kvs.wal");
  EXPECT_EQ(fusion.FirstFireTime(), Sec(1));
}

TEST(FusionDetectorTest, SingleSignalAlarmStaysBelowThreshold) {
  FusionDetector fusion;  // signal weight 0.45 < 0.7
  fusion.OnFailure(Alarm("queue_sig", "signal", "kvs.listener", Sec(1)));
  EXPECT_TRUE(fusion.Fires().empty());
  EXPECT_NEAR(fusion.ScoreAt(Sec(1)), 0.45, 1e-9);
}

TEST(FusionDetectorTest, CorroborationBeatsOneLoudChecker) {
  // Two DIFFERENT signal checkers corroborate: 0.45 + 0.45 = 0.9 fires.
  FusionDetector two;
  two.OnFailure(Alarm("sig_a", "signal", "kvs.listener", Sec(1)));
  two.OnFailure(Alarm("sig_b", "signal", "kvs.listener", Sec(1)));
  EXPECT_EQ(two.Fires().size(), 1u);
  // The SAME checker repeating only earns the persistence boost:
  // 0.45 * (1 + 0.35) = 0.6075 — one loud checker can't fake corroboration.
  FusionDetector loud;
  loud.OnFailure(Alarm("sig_a", "signal", "kvs.listener", Sec(1)));
  loud.OnFailure(Alarm("sig_a", "signal", "kvs.listener", Sec(1)));
  EXPECT_TRUE(loud.Fires().empty());
  EXPECT_NEAR(loud.ScoreAt(Sec(1)), 0.45 * 1.35, 1e-9);
}

TEST(FusionDetectorTest, PersistenceLiftsALoneSignalEventually) {
  // The fd-exhaustion story: one signal checker re-alarming through dedup.
  // 0.45 * (1 + 0.35*(n-1)) crosses 0.7 at n = 3 (0.7875) — before decay
  // between 100ms-spaced re-alarms pulls it back under.
  FusionDetector fusion;
  fusion.OnFailure(Alarm("fd_leak", "signal", "kvs.compaction", Sec(1)));
  EXPECT_TRUE(fusion.Fires().empty());
  fusion.OnFailure(Alarm("fd_leak", "signal", "kvs.compaction", Sec(1) + Ms(100)));
  EXPECT_TRUE(fusion.Fires().empty());
  fusion.OnFailure(Alarm("fd_leak", "signal", "kvs.compaction", Sec(1) + Ms(200)));
  ASSERT_EQ(fusion.Fires().size(), 1u);
  EXPECT_EQ(fusion.Fires()[0].component, "kvs.compaction");
}

TEST(FusionDetectorTest, DecayForgetsStaleEvidence) {
  FusionDetector fusion;
  fusion.OnFailure(Alarm("m", "mimic", "kvs.wal", Sec(1)));
  EXPECT_NEAR(fusion.ScoreAt(Sec(1)), 0.9, 1e-9);
  // One half-life later the evidence is worth half.
  EXPECT_NEAR(fusion.ScoreAt(Sec(1) + Ms(350)), 0.45, 1e-9);
  EXPECT_LT(fusion.ScoreAt(Sec(3)), 0.02);
}

TEST(FusionDetectorTest, HysteresisLatchesUntilScoreClears) {
  FusionDetector fusion;
  fusion.OnFailure(Alarm("m", "mimic", "kvs.wal", Sec(1)));
  ASSERT_EQ(fusion.Fires().size(), 1u);
  // More alarms while the score is still hot: latched, no second fire.
  fusion.OnFailure(Alarm("m", "mimic", "kvs.wal", Sec(1) + Ms(100)));
  fusion.OnFailure(Alarm("m2", "mimic", "kvs.wal", Sec(1) + Ms(200)));
  EXPECT_EQ(fusion.Fires().size(), 1u);
  // A long quiet stretch decays the score below clear_threshold (0.35), so
  // the next alarm re-arms AND re-fires: a new incident, a new fire.
  fusion.OnFailure(Alarm("m", "mimic", "kvs.wal", Sec(10)));
  EXPECT_EQ(fusion.Fires().size(), 2u);
}

TEST(FusionDetectorTest, PinpointTracksTheHottestComponent) {
  FusionDetector fusion;
  fusion.OnFailure(Alarm("sig", "signal", "kvs.listener", Sec(1)));
  EXPECT_EQ(fusion.PinpointAt(Sec(1)), "kvs.listener");
  fusion.OnFailure(Alarm("m", "mimic", "kvs.wal", Sec(1) + Ms(10)));
  EXPECT_EQ(fusion.PinpointAt(Sec(1) + Ms(10)), "kvs.wal");
}

TEST(FusionDetectorTest, MaskFiltersFamiliesBeforeCounting) {
  FusionPolicy probe_only;
  probe_only.family_mask = kFamilyProbe;
  FusionDetector fusion(probe_only);
  fusion.OnFailure(Alarm("m", "mimic", "kvs.wal", Sec(1)));
  fusion.OnFailure(Alarm("s", "signal", "kvs.wal", Sec(1)));
  EXPECT_EQ(fusion.alarms_seen(), 0);
  EXPECT_EQ(fusion.ScoreAt(Sec(1)), 0.0);
  fusion.OnFailure(Alarm("p", "probe", "kvs", Sec(1)));
  EXPECT_EQ(fusion.alarms_seen(), 1);
}

TEST(FusionDetectorTest, FusedFirstFireDominatesEveryMask) {
  // The fault-matrix honesty property in miniature: replay one mixed alarm
  // stream (seeded order/timing) into fused + three masked detectors and
  // check fused fires no later than any family that fires at all.
  Rng rng(31);
  FusionDetector fused;
  FusionPolicy p_probe, p_signal, p_mimic;
  p_probe.family_mask = kFamilyProbe;
  p_signal.family_mask = kFamilySignal;
  p_mimic.family_mask = kFamilyMimic;
  FusionDetector probe_only(p_probe), signal_only(p_signal), mimic_only(p_mimic);
  FusionDetector* all[] = {&fused, &probe_only, &signal_only, &mimic_only};

  const char* kinds[] = {"probe", "signal", "mimic"};
  TimeNs now = Sec(1);
  for (int i = 0; i < 60; ++i) {
    now += Ms(rng.Uniform(5, 120));
    const char* kind = kinds[rng.Uniform(0, 2)];
    const FailureSignature sig =
        Alarm(StrFormat("%s_%lld", kind, static_cast<long long>(rng.Uniform(0, 2))),
              kind, "kvs.wal", now);
    for (FusionDetector* detector : all) {
      detector->OnFailure(sig);
    }
  }
  ASSERT_TRUE(fused.FirstFireTime().has_value());
  for (FusionDetector* masked : {&probe_only, &signal_only, &mimic_only}) {
    if (masked->FirstFireTime().has_value()) {
      EXPECT_LE(*fused.FirstFireTime(), *masked->FirstFireTime());
    }
  }
}

TEST(FusionDetectorTest, ConcurrentAlarmsFromSchedulerThreads) {
  // OnFailure is called from driver scheduler/executor threads; hammer it
  // from four writers with a reader sampling the score — the TSan leg runs
  // this binary to certify the locking.
  FusionDetector fusion;
  constexpr int kThreads = 4;
  constexpr int kAlarmsEach = 1000;
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load()) {
      (void)fusion.ScoreAt(Sec(2));
      (void)fusion.PinpointAt(Sec(2));
      (void)fusion.Fires();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&fusion, t] {
      for (int i = 0; i < kAlarmsEach; ++i) {
        fusion.OnFailure(Alarm(StrFormat("c%d", t), "mimic",
                               StrFormat("comp%d", i % 3), Sec(1) + Ms(i)));
      }
    });
  }
  for (std::thread& w : writers) {
    w.join();
  }
  stop_reader.store(true);
  reader.join();
  EXPECT_EQ(fusion.alarms_seen(), kThreads * kAlarmsEach);
  EXPECT_GE(fusion.Fires().size(), 1u);
}

}  // namespace
}  // namespace wdg
