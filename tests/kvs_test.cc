// Unit tests for kvs components: types, memtable, WAL, SSTable, index,
// partition manager, flusher, compaction, replication.
#include <gtest/gtest.h>

#include <atomic>

#include "src/common/checksum.h"
#include "src/common/threading.h"
#include "src/kvs/ctx_keys.h"
#include "src/kvs/compaction.h"
#include "src/kvs/flusher.h"
#include "src/kvs/index.h"
#include "src/kvs/memtable.h"
#include "src/kvs/partition.h"
#include "src/kvs/replication.h"
#include "src/kvs/sstable.h"
#include "src/kvs/types.h"
#include "src/kvs/wal.h"

namespace kvs {
namespace {

TEST(KvsTypesTest, RequestRoundtrip) {
  Request req;
  req.op = OpType::kSet;
  req.key = "user:1";
  req.value = "alice";
  const auto decoded = Request::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, OpType::kSet);
  EXPECT_EQ(decoded->key, "user:1");
  EXPECT_EQ(decoded->value, "alice");
}

TEST(KvsTypesTest, AllOpsRoundtrip) {
  for (const OpType op : {OpType::kGet, OpType::kSet, OpType::kAppend, OpType::kDel}) {
    Request req;
    req.op = op;
    req.key = "k";
    const auto decoded = Request::Decode(req.Encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->op, op);
  }
}

TEST(KvsTypesTest, MalformedRequestRejected) {
  EXPECT_FALSE(Request::Decode("garbage").ok());
  EXPECT_FALSE(Request::Decode("FLY\x1fkey\x1fval").ok());
}

TEST(KvsTypesTest, ResponseRoundtrip) {
  const Response ok = Response::Ok("value");
  const auto decoded_ok = Response::Decode(ok.Encode());
  ASSERT_TRUE(decoded_ok.ok());
  EXPECT_TRUE(decoded_ok->ok);
  EXPECT_EQ(decoded_ok->value, "value");

  const Response err = Response::Err(wdg::TimeoutError("slow"));
  const auto decoded_err = Response::Decode(err.Encode());
  ASSERT_TRUE(decoded_err.ok());
  EXPECT_FALSE(decoded_err->ok);
  EXPECT_NE(decoded_err->error.find("TIMEOUT"), std::string::npos);
}

TEST(MemtableTest, SetGetDelLifecycle) {
  Memtable table;
  table.Set("a", "1");
  EXPECT_EQ(table.Get("a")->value, "1");
  table.Set("a", "2");
  EXPECT_EQ(table.Get("a")->value, "2");
  table.Del("a");
  ASSERT_TRUE(table.Get("a").has_value());
  EXPECT_TRUE(table.Get("a")->tombstone);
  EXPECT_FALSE(table.Get("missing").has_value());
}

TEST(MemtableTest, AppendConcatenatesAndRevivesTombstone) {
  Memtable table;
  table.Set("log", "a");
  table.Append("log", "b");
  EXPECT_EQ(table.Get("log")->value, "ab");
  table.Del("log");
  table.Append("log", "c");
  EXPECT_EQ(table.Get("log")->value, "c");
  EXPECT_FALSE(table.Get("log")->tombstone);
}

TEST(MemtableTest, ByteAccountingTracksContent) {
  Memtable table;
  EXPECT_EQ(table.ApproximateBytes(), 0);
  table.Set("key", "12345");
  const int64_t after_set = table.ApproximateBytes();
  EXPECT_EQ(after_set, 8);  // 3 + 5
  table.Set("key", "1");
  EXPECT_LT(table.ApproximateBytes(), after_set);
  table.Del("key");
  EXPECT_EQ(table.ApproximateBytes(), 3);  // key remains as tombstone
}

TEST(MemtableTest, TwoPhaseFlushKeepsEntriesReadableAndNewerWrites) {
  Memtable table;
  table.Set("a", "old");
  table.Set("b", "keep");
  const auto entries = table.BeginFlush();
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(table.Get("a")->value, "old");  // still readable mid-flush
  table.Set("a", "new");                    // lands while the flush runs
  table.AbortFlush();
  EXPECT_EQ(table.Get("a")->value, "new");  // the newer write wins the restore
  EXPECT_EQ(table.Get("b")->value, "keep");
  // A successful flush drops the buffer once the SSTable is indexed.
  (void)table.BeginFlush();
  table.EndFlush();
  EXPECT_FALSE(table.Get("a").has_value());
}

TEST(MemtableTest, DrainEmptiesAndSortsEntries) {
  Memtable table;
  table.Set("b", "2");
  table.Set("a", "1");
  const auto drained = table.Drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].first, "a");  // sorted
  EXPECT_EQ(table.EntryCount(), 0u);
  EXPECT_EQ(table.ApproximateBytes(), 0);
}

class KvsDiskFixture : public ::testing::Test {
 protected:
  KvsDiskFixture() : injector_(clock_), disk_(clock_, injector_, FastDisk()) {}
  static wdg::DiskOptions FastDisk() {
    wdg::DiskOptions options;
    options.base_latency = 0;
    options.per_kb_latency = 0;
    return options;
  }
  wdg::RealClock& clock_ = wdg::RealClock::Instance();
  wdg::FaultInjector injector_;
  wdg::SimDisk disk_;
};

using WalTest = KvsDiskFixture;

TEST_F(WalTest, AppendAndRecover) {
  Wal wal(disk_, "/w/wal.log");
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append("record-1").ok());
  ASSERT_TRUE(wal.Append("record-2").ok());
  const auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok());
  ASSERT_EQ(recovery->records.size(), 2u);
  EXPECT_EQ(recovery->records[0], "record-1");
  EXPECT_EQ(recovery->corrupt_tail_bytes, 0);
}

TEST_F(WalTest, RecoveryStopsAtCorruptRecord) {
  Wal wal(disk_, "/w/wal.log");
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append("good").ok());
  ASSERT_TRUE(wal.Append("will-be-corrupted").ok());
  // Flip a byte inside the second record's payload.
  const auto size = disk_.Size("/w/wal.log");
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(disk_.Write("/w/wal.log", *size - 3, "X").ok());
  const auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok());
  ASSERT_EQ(recovery->records.size(), 1u);
  EXPECT_EQ(recovery->records[0], "good");
  EXPECT_GT(recovery->corrupt_tail_bytes, 0);
}

TEST_F(WalTest, RecoveryToleratesTornTail) {
  Wal wal(disk_, "/w/wal.log");
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append("whole").ok());
  // Simulate a torn write: an incomplete frame at the end.
  ASSERT_TRUE(disk_.Append("/w/wal.log", "\x09\x00\x00").ok());
  const auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->records.size(), 1u);
}

TEST_F(WalTest, TruncateRestartsLog) {
  Wal wal(disk_, "/w/wal.log");
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append("x").ok());
  ASSERT_TRUE(wal.Truncate().ok());
  const auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->records.empty());
}

using SsTableTest = KvsDiskFixture;

static std::vector<std::pair<std::string, MemEntry>> SampleEntries() {
  return {{"alpha", {"1", false}}, {"beta", {"2", false}}, {"gamma", {"", true}}};
}

TEST_F(SsTableTest, WriteLoadRoundtrip) {
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/1", SampleEntries()).ok());
  const auto loaded = SsTable::Load(disk_, "/sst/1");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->at("alpha").value, "1");
  EXPECT_TRUE(loaded->at("gamma").tombstone);
}

TEST_F(SsTableTest, ValidateDetectsBitRot) {
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/1", SampleEntries()).ok());
  EXPECT_TRUE(SsTable::Validate(disk_, "/sst/1").ok());
  disk_.MarkBadRange("/sst/1", 2, 3);
  EXPECT_EQ(SsTable::Validate(disk_, "/sst/1").code(), wdg::StatusCode::kCorruption);
}

TEST_F(SsTableTest, LookupFindsAndMisses) {
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/1", SampleEntries()).ok());
  const auto hit = SsTable::Lookup(disk_, "/sst/1", "beta");
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit->has_value());
  EXPECT_EQ((*hit)->value, "2");
  const auto miss = SsTable::Lookup(disk_, "/sst/1", "zeta");
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->has_value());
}

TEST_F(SsTableTest, EmptyTableIsValid) {
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/empty", {}).ok());
  EXPECT_TRUE(SsTable::Validate(disk_, "/sst/empty").ok());
  const auto loaded = SsTable::Load(disk_, "/sst/empty");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

class IndexTest : public KvsDiskFixture {
 protected:
  IndexTest() : index_(disk_, memtable_) {}
  Memtable memtable_;
  Index index_;
};

TEST_F(IndexTest, MemtableShadowsTables) {
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/1", {{"k", {"old", false}}}).ok());
  index_.AddTable("/sst/1");
  EXPECT_EQ(**index_.Get("k"), "old");
  memtable_.Set("k", "new");
  EXPECT_EQ(**index_.Get("k"), "new");
}

TEST_F(IndexTest, NewestTableWins) {
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/1", {{"k", {"v1", false}}}).ok());
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/2", {{"k", {"v2", false}}}).ok());
  index_.AddTable("/sst/1");
  index_.AddTable("/sst/2");  // newer
  EXPECT_EQ(**index_.Get("k"), "v2");
}

TEST_F(IndexTest, TombstoneHidesOlderValue) {
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/1", {{"k", {"v1", false}}}).ok());
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/2", {{"k", {"", true}}}).ok());
  index_.AddTable("/sst/1");
  index_.AddTable("/sst/2");
  const auto result = index_.Get("k");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_value());
}

TEST_F(IndexTest, ReplaceTablesSwapsAtomically) {
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/1", {{"a", {"1", false}}}).ok());
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/2", {{"b", {"2", false}}}).ok());
  ASSERT_TRUE(
      SsTable::Write(disk_, "/sst/m", {{"a", {"1", false}}, {"b", {"2", false}}}).ok());
  index_.AddTable("/sst/1");
  index_.AddTable("/sst/2");
  index_.ReplaceTables({"/sst/1", "/sst/2"}, "/sst/m");
  ASSERT_EQ(index_.Tables().size(), 1u);
  EXPECT_EQ(**index_.Get("a"), "1");
  EXPECT_EQ(**index_.Get("b"), "2");
}

TEST_F(IndexTest, InjectedLookupFaultSurfaces) {
  wdg::FaultSpec spec;
  spec.id = "idx";
  spec.site_pattern = "index.lookup";
  spec.kind = wdg::FaultKind::kError;
  spec.error_code = wdg::StatusCode::kInternal;
  injector_.Inject(spec);
  EXPECT_FALSE(index_.Get("k").ok());
  injector_.ClearAll();
}

class PartitionTest : public KvsDiskFixture {
 protected:
  PartitionTest() : partitions_(disk_) {}
  PartitionManager partitions_;
};

TEST_F(PartitionTest, ValidatePassesOnIntactData) {
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/p1", {{"a", {"1", false}}}).ok());
  ASSERT_TRUE(partitions_.Register("/sst/p1", "a", "a").ok());
  EXPECT_TRUE(partitions_.Validate("/sst/p1").ok());
  EXPECT_TRUE(partitions_.ValidateAll().ok());
}

TEST_F(PartitionTest, ValidateCatchesCorruption) {
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/p1", {{"a", {"payload", false}}}).ok());
  ASSERT_TRUE(partitions_.Register("/sst/p1", "a", "a").ok());
  disk_.MarkBadRange("/sst/p1", 1, 2);
  EXPECT_EQ(partitions_.Validate("/sst/p1").code(), wdg::StatusCode::kCorruption);
}

TEST_F(PartitionTest, UnknownPartitionIsNotFound) {
  EXPECT_EQ(partitions_.Validate("/sst/ghost").code(), wdg::StatusCode::kNotFound);
}

TEST_F(PartitionTest, RangeOrderInvariant) {
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/p1", {{"a", {"1", false}}}).ok());
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/p2", {{"m", {"2", false}}}).ok());
  ASSERT_TRUE(partitions_.Register("/sst/p1", "a", "f").ok());
  ASSERT_TRUE(partitions_.Register("/sst/p2", "m", "z").ok());
  EXPECT_TRUE(partitions_.CheckRangesSorted().ok());
  ASSERT_TRUE(SsTable::Write(disk_, "/sst/p3", {{"c", {"3", false}}}).ok());
  ASSERT_TRUE(partitions_.Register("/sst/p3", "c", "d").ok());  // out of order
  EXPECT_FALSE(partitions_.CheckRangesSorted().ok());
}

class FlusherTest : public KvsDiskFixture {
 protected:
  FlusherTest()
      : index_(disk_, memtable_), partitions_(disk_),
        flusher_(clock_, disk_, memtable_, index_, partitions_, hooks_, metrics_, Options()) {}
  static FlusherOptions Options() {
    FlusherOptions options;
    options.flush_threshold_bytes = 64;
    options.poll_interval = wdg::Ms(5);
    options.table_dir = "/sst";
    return options;
  }
  Memtable memtable_;
  Index index_;
  PartitionManager partitions_;
  wdg::HookSet hooks_;
  wdg::MetricsRegistry metrics_;
  Flusher flusher_;
};

TEST_F(FlusherTest, FlushMovesDataToTable) {
  memtable_.Set("k1", std::string(100, 'x'));
  ASSERT_TRUE(flusher_.FlushOnce().ok());
  EXPECT_EQ(memtable_.EntryCount(), 0u);
  ASSERT_EQ(index_.Tables().size(), 1u);
  EXPECT_EQ((*index_.Get("k1"))->size(), 100u);
  EXPECT_EQ(partitions_.Partitions().size(), 1u);
  EXPECT_EQ(flusher_.flush_count(), 1);
}

TEST_F(FlusherTest, BelowThresholdIsNoop) {
  memtable_.Set("k", "tiny");
  ASSERT_TRUE(flusher_.FlushOnce().ok());
  EXPECT_EQ(index_.Tables().size(), 0u);
  EXPECT_EQ(memtable_.EntryCount(), 1u);
  ASSERT_TRUE(flusher_.FlushOnce(/*force=*/true).ok());
  EXPECT_EQ(index_.Tables().size(), 1u);
}

TEST_F(FlusherTest, FailedFlushRestoresMemtable) {
  memtable_.Set("k1", std::string(100, 'x'));
  wdg::FaultSpec spec;
  spec.id = "werr";
  spec.site_pattern = "disk.create";
  spec.kind = wdg::FaultKind::kError;
  injector_.Inject(spec);
  EXPECT_FALSE(flusher_.FlushOnce().ok());
  injector_.ClearAll();
  EXPECT_EQ(memtable_.EntryCount(), 1u);  // data restored, not lost
  ASSERT_TRUE(flusher_.FlushOnce().ok());
  EXPECT_EQ(**index_.Get("k1"), std::string(100, 'x'));
}

TEST_F(FlusherTest, KeyStaysReadableThroughoutFlush) {
  memtable_.Set("k1", std::string(100, 'x'));
  // Slow the SSTable write down so the flush window is wide open.
  wdg::FaultSpec spec;
  spec.id = "slowwrite";
  spec.site_pattern = "disk.create";
  spec.kind = wdg::FaultKind::kDelay;
  spec.delay = wdg::Ms(60);
  injector_.Inject(spec);
  std::atomic<bool> done{false};
  wdg::JoiningThread flush_thread([&] {
    EXPECT_TRUE(flusher_.FlushOnce().ok());
    done.store(true);
  });
  // Before the two-phase flush, the drained key was in neither the memtable
  // nor the table list for the whole write: concurrent Gets returned
  // NOT_FOUND for a durably-written key (the campaign's API probe caught it).
  while (!done.load()) {
    const auto value = index_.Get("k1");
    ASSERT_TRUE(value.ok());
    ASSERT_TRUE(value->has_value());
  }
  flush_thread.Join();
  EXPECT_EQ(**index_.Get("k1"), std::string(100, 'x'));
}

TEST_F(FlusherTest, HookFiresWhenArmed) {
  hooks_.Arm("FlushMemtable:1", "FlushLoop_ctx");
  memtable_.Set("k1", std::string(100, 'x'));
  ASSERT_TRUE(flusher_.FlushOnce().ok());
  wdg::CheckContext* ctx = hooks_.Context("FlushLoop_ctx");
  EXPECT_TRUE(ctx->ready());
  EXPECT_EQ(*ctx->Get(kvs::keys::EntryCount()), 1);
  EXPECT_TRUE(ctx->Get(kvs::keys::FlushFile()).has_value());
}

TEST_F(FlusherTest, BackgroundLoopFlushesOnThreshold) {
  flusher_.Start();
  memtable_.Set("big", std::string(200, 'y'));
  clock_.SleepFor(wdg::Ms(60));
  flusher_.Stop();
  EXPECT_GE(flusher_.flush_count(), 1);
}

class CompactionTest : public KvsDiskFixture {
 protected:
  CompactionTest()
      : index_(disk_, memtable_), partitions_(disk_),
        compaction_(clock_, disk_, index_, partitions_, hooks_, metrics_, Options()) {}
  static CompactionOptions Options() {
    CompactionOptions options;
    options.max_tables = 2;
    options.poll_interval = wdg::Ms(5);
    options.table_dir = "/sst";
    return options;
  }
  void WriteTable(const std::string& path, const std::string& key, const std::string& value,
                  bool tombstone = false) {
    ASSERT_TRUE(SsTable::Write(disk_, path, {{key, {value, tombstone}}}).ok());
    index_.AddTable(path);
    ASSERT_TRUE(partitions_.Register(path, key, key).ok());
  }
  Memtable memtable_;
  Index index_;
  PartitionManager partitions_;
  wdg::HookSet hooks_;
  wdg::MetricsRegistry metrics_;
  CompactionManager compaction_;
};

TEST_F(CompactionTest, MergesTablesAndDropsTombstones) {
  WriteTable("/sst/1", "a", "v1");
  WriteTable("/sst/2", "a", "v2");     // newer value wins
  WriteTable("/sst/3", "b", "", true);  // tombstone drops out
  ASSERT_TRUE(compaction_.CompactOnce().ok());
  ASSERT_EQ(index_.Tables().size(), 1u);
  EXPECT_EQ(**index_.Get("a"), "v2");
  EXPECT_FALSE(index_.Get("b")->has_value());
  EXPECT_FALSE(disk_.Exists("/sst/1"));
  EXPECT_EQ(compaction_.compaction_count(), 1);
}

TEST_F(CompactionTest, AtOrBelowMaxIsNoop) {
  WriteTable("/sst/1", "a", "1");
  WriteTable("/sst/2", "b", "2");
  ASSERT_TRUE(compaction_.CompactOnce().ok());
  EXPECT_EQ(index_.Tables().size(), 2u);
}

TEST_F(CompactionTest, InjectedMergeHangDetectableViaProbe) {
  WriteTable("/sst/1", "a", "1");
  wdg::FaultSpec spec;
  spec.id = "stuck";
  spec.site_pattern = "compact.merge";
  spec.kind = wdg::FaultKind::kError;  // error variant keeps the test instant
  spec.error_code = wdg::StatusCode::kInternal;
  injector_.Inject(spec);
  EXPECT_FALSE(compaction_.MergeProbe("checker").ok());
  injector_.ClearAll();
  EXPECT_TRUE(compaction_.MergeProbe("checker").ok());
}

TEST_F(CompactionTest, GetPropagatesTrulyMissingTable) {
  // A listed table whose file is gone while the list is stable is damage,
  // not a compaction race: Index::Get must not silently report "no value".
  WriteTable("/sst/1", "a", "1");
  ASSERT_TRUE(disk_.Delete("/sst/1").ok());
  const auto result = index_.Get("a");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), wdg::StatusCode::kNotFound);
}

TEST_F(CompactionTest, MergeProbeToleratesConcurrentlyCompactedTable) {
  // The probe snapshots the table list, then loads; a concurrent CompactOnce
  // can delete a listed table in between. Simulate the stale snapshot by
  // deleting a file out from under the index: progress, not a fault.
  WriteTable("/sst/1", "a", "1");
  WriteTable("/sst/2", "b", "2");
  ASSERT_TRUE(disk_.Delete("/sst/1").ok());
  EXPECT_TRUE(compaction_.MergeProbe("checker").ok());
}

TEST_F(CompactionTest, BackgroundLoopCompacts) {
  WriteTable("/sst/1", "a", "1");
  WriteTable("/sst/2", "b", "2");
  WriteTable("/sst/3", "c", "3");
  compaction_.Start();
  clock_.SleepFor(wdg::Ms(80));
  compaction_.Stop();
  EXPECT_EQ(index_.Tables().size(), 1u);
}

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() : injector_(clock_), net_(clock_, injector_, FastNet()) {}
  static wdg::NetOptions FastNet() {
    wdg::NetOptions options;
    options.base_latency = wdg::Us(20);
    return options;
  }
  ReplicationOptions Options() {
    ReplicationOptions options;
    options.followers = {"f1"};
    options.poll_interval = wdg::Ms(5);
    options.ack_timeout = wdg::Ms(100);
    return options;
  }
  wdg::RealClock& clock_ = wdg::RealClock::Instance();
  wdg::FaultInjector injector_;
  wdg::SimNet net_;
  wdg::HookSet hooks_;
  wdg::MetricsRegistry metrics_;
};

TEST_F(ReplicationTest, BatchesReachFollower) {
  wdg::Endpoint* follower = net_.CreateEndpoint("f1");
  ReplicationEngine engine(clock_, net_, "leader", hooks_, metrics_, Options());
  engine.Start();
  std::thread follower_thread([&] {
    const auto msg = follower->Recv(wdg::Sec(5));
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->type, kMsgReplicate);
    EXPECT_NE(msg->payload.find("SET"), std::string::npos);
    ASSERT_TRUE(follower->Reply(*msg, "ack").ok());
  });
  Request req;
  req.op = OpType::kSet;
  req.key = "k";
  req.value = "v";
  engine.Enqueue(req);
  follower_thread.join();
  clock_.SleepFor(wdg::Ms(20));
  engine.Stop();
  EXPECT_GE(engine.batches_sent(), 1);
  EXPECT_EQ(engine.ack_failures(), 0);
}

TEST_F(ReplicationTest, MissingAckCountsFailure) {
  net_.CreateEndpoint("f1");  // mute follower: never acks
  ReplicationEngine engine(clock_, net_, "leader", hooks_, metrics_, Options());
  engine.Start();
  Request req;
  req.op = OpType::kSet;
  req.key = "k";
  engine.Enqueue(req);
  clock_.SleepFor(wdg::Ms(200));
  engine.Stop();
  EXPECT_GE(engine.ack_failures(), 1);
}

TEST_F(ReplicationTest, HookCapturesFollowerAndBatchSize) {
  wdg::Endpoint* follower = net_.CreateEndpoint("f1");
  hooks_.Arm("ReplicateBatch:1", "ReplicationLoop_ctx");
  ReplicationEngine engine(clock_, net_, "leader", hooks_, metrics_, Options());
  engine.Start();
  std::thread follower_thread([&] {
    const auto msg = follower->Recv(wdg::Sec(5));
    if (msg.has_value()) {
      (void)follower->Reply(*msg, "ack");
    }
  });
  Request req;
  req.op = OpType::kSet;
  req.key = "k";
  engine.Enqueue(req);
  follower_thread.join();
  engine.Stop();
  wdg::CheckContext* ctx = hooks_.Context("ReplicationLoop_ctx");
  EXPECT_TRUE(ctx->ready());
  EXPECT_EQ(*ctx->Get(kvs::keys::Follower()), "f1");
  EXPECT_EQ(*ctx->Get(kvs::keys::BatchSize()), 1);
}

}  // namespace
}  // namespace kvs
