// Unit tests for the mini-IR and its static analyses.
#include <gtest/gtest.h>

#include "src/ir/analysis.h"
#include "src/ir/ir.h"

namespace awd {
namespace {

// A ZooKeeper-shaped module mirroring Figure 2 of the paper: a long-running
// snapshot loop calling serializeSnapshot → serialize → serializeNode
// (recursive), whose only interesting op is the writeRecord I/O.
Module FigureTwoModule() {
  Module module("minizk");
  module.AddFunction(FunctionBuilder("snapshotLoop", "zk.snapshot")
                         .LongRunning()
                         .Op(OpKind::kIoCreate, "disk.create", {"snapName"}, {},
                             "create snapshot file")  // init: outside the loop
                         .LoopBegin()
                         .Compute("wait for snapshot trigger")
                         .Call("serializeSnapshot", {"oa"})
                         .Op(OpKind::kIoFsync, "disk.fsync", {"snapName"}, {}, "fsync snapshot")
                         .LoopEnd()
                         .Build());
  module.AddFunction(FunctionBuilder("serializeSnapshot", "zk.snapshot")
                         .Param("oa")
                         .Compute("scount = 0")
                         .Call("serialize", {"oa", "tag"})
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("serialize", "zk.snapshot")
                         .Param("oa")
                         .Param("tag")
                         .Compute("header bookkeeping")
                         .Call("serializeNode", {"oa", "path"})
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("serializeNode", "zk.snapshot")
                         .Param("oa")
                         .Param("path")
                         .Compute("node = getNode(path)", {"path"}, {"node"})
                         .Op(OpKind::kLockAcquire, "lock.datatree.node", {"node"}, {},
                             "synchronized(node)")
                         .Op(OpKind::kIoWrite, "disk.write", {"oa", "node"}, {},
                             "oa.writeRecord(node, \"node\")")
                         .Compute("children = node.getChildren()", {"node"}, {"children"})
                         .Op(OpKind::kLockRelease, "lock.datatree.node", {"node"})
                         .Call("serializeNode", {"oa", "path"})  // recurse into children
                         .Return()
                         .Build());
  return module;
}

TEST(IrBuilderTest, IdsAutoIncrementFromOne) {
  const Module module = FigureTwoModule();
  const Function* fn = module.GetFunction("serializeNode");
  ASSERT_NE(fn, nullptr);
  ASSERT_GE(fn->instrs.size(), 3u);
  EXPECT_EQ(fn->instrs[0].id, 1);
  EXPECT_EQ(fn->instrs[1].id, 2);
  EXPECT_EQ(fn->FindInstr(3)->site, "disk.write");
  EXPECT_EQ(fn->FindInstr(999), nullptr);
}

TEST(IrBuilderTest, ModuleLookupAndCounts) {
  const Module module = FigureTwoModule();
  EXPECT_EQ(module.name(), "minizk");
  EXPECT_EQ(module.functions().size(), 4u);
  EXPECT_NE(module.GetFunction("serialize"), nullptr);
  EXPECT_EQ(module.GetFunction("absent"), nullptr);
  EXPECT_GT(module.TotalInstrCount(), 10);
}

TEST(IrBuilderTest, InstrToStringIsReadable) {
  const Module module = FigureTwoModule();
  const Instr* write = module.GetFunction("serializeNode")->FindInstr(3);
  const std::string text = write->ToString();
  EXPECT_NE(text.find("io_write"), std::string::npos);
  EXPECT_NE(text.find("disk.write"), std::string::npos);
  EXPECT_NE(text.find("writeRecord"), std::string::npos);
}

TEST(VulnerabilityTest, DefaultCategoriesMatchPaper) {
  // §4.1: I/O, synchronization, resource, communication are vulnerable.
  EXPECT_TRUE(IsVulnerableByDefault(OpKind::kIoWrite));
  EXPECT_TRUE(IsVulnerableByDefault(OpKind::kIoRead));
  EXPECT_TRUE(IsVulnerableByDefault(OpKind::kNetSend));
  EXPECT_TRUE(IsVulnerableByDefault(OpKind::kNetRecv));
  EXPECT_TRUE(IsVulnerableByDefault(OpKind::kLockAcquire));
  EXPECT_TRUE(IsVulnerableByDefault(OpKind::kAlloc));
  // Pure logic is "better suited for unit testing before production".
  EXPECT_FALSE(IsVulnerableByDefault(OpKind::kCompute));
  EXPECT_FALSE(IsVulnerableByDefault(OpKind::kCall));
  EXPECT_FALSE(IsVulnerableByDefault(OpKind::kLockRelease));
}

TEST(CallGraphTest, DirectCallees) {
  const Module module = FigureTwoModule();
  const CallGraph graph(module);
  EXPECT_EQ(graph.CalleesOf("snapshotLoop").count("serializeSnapshot"), 1u);
  EXPECT_EQ(graph.CalleesOf("serialize").count("serializeNode"), 1u);
  EXPECT_TRUE(graph.CalleesOf("absent").empty());
}

TEST(CallGraphTest, TransitiveReachability) {
  const Module module = FigureTwoModule();
  const CallGraph graph(module);
  const auto reach = graph.ReachableFrom("snapshotLoop");
  EXPECT_EQ(reach.size(), 4u);  // all functions reachable from the loop
  EXPECT_EQ(reach.count("serializeNode"), 1u);
}

TEST(CallGraphTest, DetectsRecursionCycle) {
  const Module module = FigureTwoModule();
  const CallGraph graph(module);
  EXPECT_TRUE(graph.HasCycleThrough("serializeNode"));
  EXPECT_FALSE(graph.HasCycleThrough("snapshotLoop"));
}

TEST(LongRunningTest, RootsAreFlaggedFunctions) {
  const Module module = FigureTwoModule();
  const auto roots = LongRunningRoots(module);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], "snapshotLoop");
}

TEST(ContinuousInstrsTest, LoopBodyOnlyForRoots) {
  const Module module = FigureTwoModule();
  const Function* loop = module.GetFunction("snapshotLoop");
  // As a root (include_whole_body=false): only instrs inside the loop —
  // the disk.create init op is excluded (§4.1 "exclude initialization").
  const auto continuous = ContinuousInstrs(*loop, /*include_whole_body=*/false);
  for (const int id : continuous) {
    EXPECT_NE(loop->FindInstr(id)->site, "disk.create");
  }
  EXPECT_FALSE(continuous.empty());
}

TEST(ContinuousInstrsTest, WholeBodyForCallees) {
  const Module module = FigureTwoModule();
  const Function* node = module.GetFunction("serializeNode");
  // Callees of a continuous region are taken wholesale (no loops inside).
  const auto ids = ContinuousInstrs(*node, /*include_whole_body=*/true);
  EXPECT_EQ(ids.size(), node->instrs.size());
}

TEST(ContinuousInstrsTest, FunctionWithoutLoopTakesAll) {
  const Module module = FigureTwoModule();
  const Function* fn = module.GetFunction("serializeSnapshot");
  EXPECT_EQ(ContinuousInstrs(*fn, false).size(), fn->instrs.size());
}

TEST(PolicyTest, DefaultUsesBuiltinCategories) {
  const VulnerabilityPolicy policy = VulnerabilityPolicy::Default();
  Instr io;
  io.kind = OpKind::kIoWrite;
  io.site = "disk.write";
  EXPECT_TRUE(policy.IsVulnerable(io));
  Instr compute;
  compute.kind = OpKind::kCompute;
  EXPECT_FALSE(policy.IsVulnerable(compute));
}

TEST(PolicyTest, KindOverrideNarrowsScope) {
  VulnerabilityPolicy policy;
  policy.vulnerable_kinds = {OpKind::kNetSend};
  Instr io;
  io.kind = OpKind::kIoWrite;
  io.site = "disk.write";
  EXPECT_FALSE(policy.IsVulnerable(io));
  Instr net;
  net.kind = OpKind::kNetSend;
  net.site = "net.send.x";
  EXPECT_TRUE(policy.IsVulnerable(net));
}

TEST(PolicyTest, ExtraAndExcludedSites) {
  VulnerabilityPolicy policy;
  policy.extra_sites = {"index.insert"};       // system-specific vulnerable op (§4.2)
  policy.excluded_sites = {"disk.fsync"};
  Instr custom;
  custom.kind = OpKind::kCompute;
  custom.site = "index.insert";
  EXPECT_TRUE(policy.IsVulnerable(custom));
  Instr fsync;
  fsync.kind = OpKind::kIoFsync;
  fsync.site = "disk.fsync";
  EXPECT_FALSE(policy.IsVulnerable(fsync));
}

TEST(PolicyTest, AnnotationsHonored) {
  VulnerabilityPolicy policy;
  Instr tagged;
  tagged.kind = OpKind::kCompute;
  tagged.annotated_vulnerable = true;
  EXPECT_TRUE(policy.IsVulnerable(tagged));
  policy.honor_annotations = false;
  EXPECT_FALSE(policy.IsVulnerable(tagged));
}

}  // namespace
}  // namespace awd
