// Unit + integration tests for the core watchdog library: contexts, hooks,
// the three checker families, and the driver (scheduling, hang capture,
// crash isolation, dedup, probe-validation escalation, recovery actions).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "src/common/clock.h"
#include "src/common/strings.h"
#include "src/fault/fault_injector.h"
#include "src/watchdog/builder.h"
#include "src/watchdog/builtin_checkers.h"
#include "src/watchdog/context.h"
#include "src/watchdog/driver.h"
#include "src/watchdog/failure.h"

namespace wdg {
namespace {

// ---------------------------------------------------------------- contexts

TEST(CheckContextTest, NotReadyUntilMarked) {
  static const auto kFile = ContextKey<std::string>::Of("nr.file");
  CheckContext ctx("kvs.flush");
  EXPECT_FALSE(ctx.ready());
  ctx.Set(kFile, "/sst/1");
  EXPECT_FALSE(ctx.ready());  // Set alone does not publish
  ctx.MarkReady(123);
  EXPECT_TRUE(ctx.ready());
  EXPECT_EQ(ctx.last_update(), 123);
  EXPECT_EQ(ctx.epoch(), 1u);
}

TEST(CheckContextTest, TypedKeysReadBack) {
  static const auto kI = ContextKey<int64_t>::Of("tk.i");
  static const auto kD = ContextKey<double>::Of("tk.d");
  static const auto kS = ContextKey<std::string>::Of("tk.s");
  static const auto kB = ContextKey<bool>::Of("tk.b");
  CheckContext ctx("c");
  ctx.Set(kI, 42);
  ctx.Set(kD, 2.5);
  ctx.Set(kS, "text");  // type_identity_t: converts without spelling the type
  ctx.Set(kB, true);
  ctx.MarkReady(1);  // typed writes batch until MarkReady
  EXPECT_EQ(*ctx.Get(kI), 42);
  EXPECT_DOUBLE_EQ(*ctx.Get(kD), 2.5);
  EXPECT_EQ(*ctx.Get(kS), "text");
  EXPECT_TRUE(*ctx.Get(kB));
  // Typed read through the name (cold path) sees the same slots.
  EXPECT_EQ(*ctx.Get<int64_t>("tk.i"), 42);
  EXPECT_DOUBLE_EQ(*ctx.Get<double>("tk.i"), 42.0);  // int widens to double
  EXPECT_FALSE(ctx.Get<int64_t>("tk.s").has_value());  // type mismatch
  EXPECT_FALSE(ctx.Get("missing").has_value());
}

TEST(CheckContextTest, TypedWritesBatchUntilMarkReady) {
  static const auto kFile = ContextKey<std::string>::Of("batch.file");
  static const auto kCount = ContextKey<int64_t>::Of("batch.count");
  CheckContext ctx("c");
  ctx.Set(kFile, "/sst/9");
  ctx.Set(kCount, 16);
  // Staged in the thread-local HookBatch: nothing visible yet.
  EXPECT_EQ(ctx.pending_batch_size(), 2u);
  EXPECT_FALSE(ctx.Get(kFile).has_value());
  ctx.MarkReady(55);
  EXPECT_EQ(ctx.pending_batch_size(), 0u);
  EXPECT_EQ(*ctx.Get(kFile), "/sst/9");
  EXPECT_EQ(*ctx.Get(kCount), 16);
}

TEST(CheckContextTest, KeyRegistryInternsOnce) {
  const auto a = ContextKey<int64_t>::Of("reg.same");
  const auto b = ContextKey<int64_t>::Of("reg.same");
  EXPECT_EQ(a.slot(), b.slot());
  EXPECT_EQ(a.name(), "reg.same");
  // The untyped ContextKey<CtxValue> interns as kAny (codegen's default);
  // a concrete declaration fixes the type.
  CheckContext ctx("c");
  const auto untyped = ContextKey<CtxValue>::Of("reg.untyped_first");
  ctx.Set(untyped, CtxValue(int64_t{1}));
  const auto typed = ContextKey<int64_t>::Of("reg.untyped_first");
  EXPECT_EQ(typed.slot(), untyped.slot());
  EXPECT_EQ(KeyRegistry::Instance().TypeOf(typed.slot()), CtxType::kInt);
}

// The string-keyed *read* side — Get<T>(name) for checkers that only know
// a name at runtime — must keep working now that the v1 string-keyed write
// shim is gone (writers always hold a typed key; Restore uses the private
// slot path).
TEST(CheckContextTest, StringNameReadsOverTypedWrites) {
  static const auto kI = ContextKey<int64_t>::Of("i");
  static const auto kD = ContextKey<double>::Of("d");
  static const auto kS = ContextKey<std::string>::Of("s");
  static const auto kB = ContextKey<bool>::Of("b");
  CheckContext ctx("c");
  ctx.Set(kI, 42);
  ctx.Set(kD, 2.5);
  ctx.Set(kS, "text");
  ctx.Set(kB, true);
  ctx.MarkReady(1);
  EXPECT_EQ(*ctx.Get<int64_t>("i"), 42);
  EXPECT_DOUBLE_EQ(*ctx.Get<double>("d"), 2.5);
  EXPECT_DOUBLE_EQ(*ctx.Get<double>("i"), 42.0);  // int widens to double
  EXPECT_EQ(*ctx.Get<std::string>("s"), "text");
  EXPECT_TRUE(*ctx.Get<bool>("b"));
  EXPECT_FALSE(ctx.Get<int64_t>("s").has_value());  // type mismatch
  EXPECT_FALSE(ctx.Get("missing").has_value());
}

// Strings longer than the 48-byte inline payload land in the stripe-guarded
// overflow member; reads route through the locked per-slot path and must
// round-trip exactly, including back-to-back overwrites in both directions.
TEST(CheckContextTest, OverflowStringsRoundTrip) {
  static const auto kBig = ContextKey<std::string>::Of("ovf.big");
  const std::string long_value(200, 'x');
  CheckContext ctx("c");
  ctx.Set(kBig, long_value);
  ctx.MarkReady(1);
  EXPECT_EQ(*ctx.Get(kBig), long_value);
  EXPECT_EQ(std::get<std::string>(ctx.Snapshot().at("ovf.big")), long_value);
  ctx.Set(kBig, "short again");  // overflow -> inline overwrite
  ctx.MarkReady(2);
  EXPECT_EQ(*ctx.Get(kBig), "short again");
  ctx.Set(kBig, std::string(64, 'y'));  // inline -> overflow again
  ctx.MarkReady(3);
  EXPECT_EQ(*ctx.Get(kBig), std::string(64, 'y'));
}

// Single-value batches publish through the wait-free fast path (one CAS +
// one release store); multi-value batches and overflow strings do not.
TEST(CheckContextTest, SingleValueFastPathCounted) {
  static const auto kOne = ContextKey<int64_t>::Of("fp.one");
  static const auto kTwo = ContextKey<int64_t>::Of("fp.two");
  static const auto kBig = ContextKey<std::string>::Of("fp.big");
  CheckContext ctx("c");
  ctx.Set(kOne, 1);
  ctx.MarkReady(1);
  EXPECT_EQ(ctx.read_stats().fastpath_publishes, 1);
  ctx.Set(kOne, 2);
  ctx.Set(kTwo, 3);
  ctx.MarkReady(2);  // two-entry batch -> stripe-locked flush
  EXPECT_EQ(ctx.read_stats().fastpath_publishes, 1);
  ctx.Set(kBig, std::string(100, 'z'));
  ctx.MarkReady(3);  // single entry but overflow -> stripe-locked flush
  EXPECT_EQ(ctx.read_stats().fastpath_publishes, 1);
  EXPECT_EQ(*ctx.Get(kOne), 2);
  EXPECT_EQ(*ctx.Get(kTwo), 3);
  EXPECT_EQ(ctx.epoch(), 3u);
}

// Uncontended reads never touch a stripe mutex: the optimistic counters
// advance and the fallback counters stay at zero.
TEST(CheckContextTest, ReadStatsTrackOptimisticPath) {
  static const auto kK = ContextKey<int64_t>::Of("stats.k");
  CheckContext ctx("c");
  ctx.Set(kK, 7);
  ctx.MarkReady(1);
  (void)ctx.Get(kK);
  (void)ctx.SnapshotConsistent();
  (void)ctx.Snapshot();
  const auto stats = ctx.read_stats();
  EXPECT_EQ(stats.snapshot_optimistic, 2);
  EXPECT_EQ(stats.snapshot_retries, 0);
  EXPECT_EQ(stats.snapshot_fallbacks, 0);
  EXPECT_EQ(stats.get_fallbacks, 0);
}

TEST(CheckContextTest, SnapshotIsReplicatedCopy) {
  static const auto kK = ContextKey<std::string>::Of("k");
  CheckContext ctx("c");
  ctx.Set(kK, "v1");
  ctx.MarkReady(1);
  auto snapshot = ctx.Snapshot();
  ctx.Set(kK, "v2");
  ctx.MarkReady(2);
  // Isolation: the checker's copy is unaffected by later main-program writes.
  EXPECT_EQ(std::get<std::string>(snapshot.at("k")), "v1");
}

TEST(CheckContextTest, ConsistentSnapshotCarriesEpoch) {
  static const auto kK = ContextKey<std::string>::Of("snap.k");
  CheckContext ctx("c");
  ctx.Set(kK, "v1");
  ctx.MarkReady(10);
  ctx.Set(kK, "v2");
  ctx.MarkReady(20);
  const auto snapshot = ctx.SnapshotConsistent();
  EXPECT_EQ(snapshot.epoch, 2u);
  EXPECT_EQ(snapshot.last_update, 20);
  EXPECT_EQ(std::get<std::string>(snapshot.values.at("snap.k")), "v2");
}

TEST(CheckContextTest, InvalidateDropsReady) {
  CheckContext ctx("c");
  ctx.MarkReady(1);
  ctx.Invalidate();
  EXPECT_FALSE(ctx.ready());
}

TEST(CheckContextTest, DumpRendersAllValuesWithTypeTags) {
  static const auto kN = ContextKey<int64_t>::Of("n");
  static const auto kName = ContextKey<std::string>::Of("name");
  CheckContext ctx("c");
  ctx.Set(kN, 7);
  ctx.Set(kName, "sst");
  ctx.MarkReady(1);
  const std::string dump = ctx.Dump();
  EXPECT_NE(dump.find("n=i:7"), std::string::npos);
  EXPECT_NE(dump.find("name=s:sst"), std::string::npos);
}

// ------------------------------------------------------------------- hooks

TEST(HookSetTest, UnarmedHookIsInert) {
  HookSet hooks;
  HookSite* site = hooks.Site("kvs.flusher.write");
  int fills = 0;
  site->Fire([&](CheckContext&) { ++fills; });
  EXPECT_EQ(fills, 0);
  EXPECT_FALSE(site->armed());
  EXPECT_EQ(site->fired_count(), 0);
}

TEST(HookSetTest, ArmedHookPopulatesContext) {
  static const auto kFile = ContextKey<std::string>::Of("hook.file");
  HookSet hooks;
  hooks.Arm("kvs.flusher.write", "flush_ctx");
  HookSite* site = hooks.Site("kvs.flusher.write");
  site->Fire([&](CheckContext& ctx) {
    ctx.Set(kFile, "/sst/9");
    ctx.MarkReady(77);
  });
  CheckContext* ctx = hooks.Context("flush_ctx");
  EXPECT_TRUE(ctx->ready());
  EXPECT_EQ(*ctx->Get(kFile), "/sst/9");
  EXPECT_EQ(site->fired_count(), 1);
}

TEST(HookSetTest, DisarmStopsSync) {
  HookSet hooks;
  hooks.Arm("s", "c");
  hooks.Disarm("s");
  int fills = 0;
  hooks.Site("s")->Fire([&](CheckContext&) { ++fills; });
  EXPECT_EQ(fills, 0);
  EXPECT_EQ(hooks.ArmedCount(), 0);
}

TEST(HookSetTest, StablePointersAndNames) {
  HookSet hooks;
  HookSite* a = hooks.Site("x");
  hooks.Site("y");
  EXPECT_EQ(hooks.Site("x"), a);
  EXPECT_EQ(hooks.SiteNames().size(), 2u);
}

// ---------------------------------------------------------------- checkers

TEST(ProbeCheckerTest, PassAndFail) {
  std::atomic<bool> healthy{true};
  ProbeChecker checker("probe", "kvs", [&] {
    return healthy ? Status::Ok() : TimeoutError("SET timed out");
  });
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);
  healthy = false;
  const CheckResult result = checker.Check();
  ASSERT_EQ(result.outcome, CheckOutcome::kFail);
  EXPECT_EQ(result.signature.type, FailureType::kLivenessTimeout);
  // Probes see only the public API: localization stops at the process level.
  EXPECT_EQ(result.signature.location.Level(), LocalizationLevel::kComponent);
  EXPECT_TRUE(result.signature.impact_confirmed);  // probe == client impact
}

TEST(SignalCheckerTest, DebouncesTransientSpikes) {
  double value = 0;
  SignalChecker checker("queue_depth", "kvs.listener", "queue",
                        [&] { return value; }, [](double v) { return v < 100; },
                        /*consecutive_needed=*/3);
  value = 500;  // spike
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);  // 1st violation
  value = 5;
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);  // reset
  value = 500;
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);
  const CheckResult result = checker.Check();  // 3rd consecutive → alarm
  ASSERT_EQ(result.outcome, CheckOutcome::kFail);
  EXPECT_EQ(result.signature.location.component, "kvs.listener");
}

TEST(MimicCheckerTest, RefusesUnreadyContext) {
  CheckContext ctx("c");
  int bodies = 0;
  MimicChecker checker("m", "kvs.flusher", &ctx,
                       [&](const CheckContext&, MimicChecker&) {
                         ++bodies;
                         return CheckResult::Pass();
                       });
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kContextNotReady);
  EXPECT_EQ(bodies, 0);  // the paper's spurious-report guard
  ctx.MarkReady(1);
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);
  EXPECT_EQ(bodies, 1);
}

TEST(MimicCheckerTest, BodySeesContextValues) {
  static const auto kFile = ContextKey<std::string>::Of("file");
  CheckContext ctx("c");
  ctx.Set(kFile, "/sst/3");
  ctx.MarkReady(1);
  MimicChecker checker("m", "kvs.flusher", &ctx,
                       [&](const CheckContext& c, MimicChecker& self) {
                         EXPECT_EQ(*c.Get<std::string>("file"), "/sst/3");
                         SourceLocation loc{"kvs.flusher", "Flush", "disk.write", 4};
                         return CheckResult::Fail(self.MakeSignature(
                             FailureType::kOperationError, loc, StatusCode::kIoError,
                             "write failed", c.Dump()));
                       });
  const CheckResult result = checker.Check();
  ASSERT_EQ(result.outcome, CheckOutcome::kFail);
  EXPECT_EQ(result.signature.location.Level(), LocalizationLevel::kOperation);
  EXPECT_NE(result.signature.context_dump.find("/sst/3"), std::string::npos);
}

TEST(SleepDriftCheckerTest, QuietRuntimePassesPausedRuntimeAlarms) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  SleepDriftChecker checker("gc_watch", "runtime", clock, injector,
                            /*expected_sleep=*/Ms(10), /*drift_factor=*/3.0);
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);
  EXPECT_GE(checker.last_observed(), Ms(10));

  // A 60ms stop-the-world pause (6x the expected sleep).
  FaultSpec pause;
  pause.id = "gc";
  pause.site_pattern = "runtime.pause";
  pause.kind = FaultKind::kDelay;
  pause.delay = Ms(60);
  injector.Inject(pause);
  const CheckResult result = checker.Check();
  ASSERT_EQ(result.outcome, CheckOutcome::kFail);
  EXPECT_EQ(result.signature.type, FailureType::kLivenessTimeout);
  EXPECT_EQ(result.signature.code, StatusCode::kResourceExhausted);
  EXPECT_NE(result.signature.message.find("memory pressure"), std::string::npos);
  injector.ClearAll();
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);
}

// -------------------------------------------------------------- signatures

TEST(FailureSignatureTest, LocalizationLevels) {
  SourceLocation loc;
  EXPECT_EQ(loc.Level(), LocalizationLevel::kProcess);
  loc.component = "kvs.indexer";
  EXPECT_EQ(loc.Level(), LocalizationLevel::kComponent);
  loc.function = "Insert";
  EXPECT_EQ(loc.Level(), LocalizationLevel::kFunction);
  loc.op_site = "index.insert";
  EXPECT_EQ(loc.Level(), LocalizationLevel::kOperation);
}

TEST(FailureSignatureTest, ToStringMentionsEverything) {
  FailureSignature sig;
  sig.type = FailureType::kLivenessTimeout;
  sig.checker_name = "flush_checker";
  sig.location = {"kvs.flusher", "Flush", "disk.write", 7};
  sig.code = StatusCode::kTimeout;
  sig.message = "stuck";
  const std::string text = sig.ToString();
  EXPECT_NE(text.find("LIVENESS_TIMEOUT"), std::string::npos);
  EXPECT_NE(text.find("flush_checker"), std::string::npos);
  EXPECT_NE(text.find("disk.write"), std::string::npos);
}

// ------------------------------------------------------------------ driver

class RecordingListener : public FailureListener {
 public:
  void OnFailure(const FailureSignature& sig) override {
    std::lock_guard<std::mutex> lock(mu_);
    signatures_.push_back(sig);
  }
  std::vector<FailureSignature> signatures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return signatures_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<FailureSignature> signatures_;
};

CheckerOptions FastChecker() {
  CheckerOptions options;
  options.interval = Ms(10);
  options.timeout = Ms(60);
  return options;
}

TEST(WatchdogDriverTest, RunsCheckersPeriodically) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver driver(clock);
  std::atomic<int> runs{0};
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "p", "sys", [&] { ++runs; return Status::Ok(); }, FastChecker()));
  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(100));
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_GE(runs.load(), 3);
  const CheckerStats stats = driver.StatsFor("p");
  EXPECT_EQ(stats.runs, stats.passes);
  EXPECT_EQ(stats.fails, 0);
}

TEST(WatchdogDriverTest, ReportsFailuresToListeners) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver driver(clock);
  RecordingListener listener;
  driver.AddListener(&listener);
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "p", "sys", [] { return IoError("broken"); }, FastChecker()));
  ASSERT_TRUE(driver.Start().ok());
  ASSERT_TRUE(driver.WaitForFailure(Sec(2)));
  EXPECT_TRUE(driver.Stop().ok());
  ASSERT_FALSE(listener.signatures().empty());
  EXPECT_EQ(listener.signatures()[0].checker_name, "p");
}

TEST(WatchdogDriverTest, HungCheckerBecomesLivenessSignatureWithPinpoint) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  FaultSpec hang;
  hang.id = "h";
  hang.site_pattern = "net.send.follower";
  hang.kind = FaultKind::kHang;
  injector.Inject(hang);

  WatchdogDriver::Options options;
  options.release_on_stop = [&] { injector.ClearAll(); };
  WatchdogDriver driver(clock, options);
  auto* checker_ptr = driver.AddChecker(std::make_unique<MimicChecker>(
      "replication_checker", "kvs.replication", nullptr,
      [&](const CheckContext&, MimicChecker& self) {
        // Fate sharing: publish the op, then block exactly like the program.
        self.SetCurrentOp({"kvs.replication", "ReplicateBatch", "net.send.follower", 20});
        injector.Act("net.send.follower");
        return CheckResult::Pass();
      },
      FastChecker()));
  (void)checker_ptr;
  ASSERT_TRUE(driver.Start().ok());
  ASSERT_TRUE(driver.WaitForFailure(Sec(2)));
  const auto failure = *driver.FirstFailure();
  EXPECT_EQ(failure.type, FailureType::kLivenessTimeout);
  EXPECT_EQ(failure.location.op_site, "net.send.follower");
  EXPECT_EQ(failure.location.function, "ReplicateBatch");
  EXPECT_EQ(failure.location.Level(), LocalizationLevel::kOperation);
  EXPECT_TRUE(driver.Stop().ok());  // releases the parked checker via release_on_stop
  EXPECT_GE(driver.StatsFor("replication_checker").timeouts, 1);
}

TEST(WatchdogDriverTest, CheckerCrashIsIsolatedAndReported) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver driver(clock);
  driver.AddChecker(std::make_unique<MimicChecker>(
      "crashy", "kvs.indexer", nullptr,
      [](const CheckContext&, MimicChecker&) -> CheckResult {
        throw std::runtime_error("segfault stand-in");
      },
      FastChecker()));
  ASSERT_TRUE(driver.Start().ok());
  ASSERT_TRUE(driver.WaitForFailure(Sec(2)));
  EXPECT_TRUE(driver.Stop().ok());
  const auto failure = *driver.FirstFailure();
  EXPECT_EQ(failure.type, FailureType::kCheckerCrash);
  EXPECT_NE(failure.message.find("segfault stand-in"), std::string::npos);
  EXPECT_GE(driver.StatsFor("crashy").crashes, 1);
}

TEST(WatchdogDriverTest, DedupCollapsesRepeatedSignatures) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options;
  options.dedup_window = Sec(10);
  WatchdogDriver driver(clock, options);
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "p", "sys", [] { return IoError("same failure every time"); }, FastChecker()));
  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(150));
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_EQ(driver.Failures().size(), 1u);  // one report despite ~10 failing runs
  EXPECT_GE(driver.deduped_count(), 3);
}

TEST(WatchdogDriverTest, ValidationProbeConfirmsImpact) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options;
  options.validation_probe = [] { return TimeoutError("client request also fails"); };
  WatchdogDriver driver(clock, options);
  driver.AddChecker(std::make_unique<MimicChecker>(
      "m", "kvs.flusher", nullptr,
      [](const CheckContext&, MimicChecker& self) {
        return CheckResult::Fail(self.MakeSignature(
            FailureType::kOperationError, {"kvs.flusher", "Flush", "disk.write", 1},
            StatusCode::kIoError, "mimicked write failed"));
      },
      FastChecker()));
  ASSERT_TRUE(driver.Start().ok());
  ASSERT_TRUE(driver.WaitForFailure(Sec(2)));
  EXPECT_TRUE(driver.Stop().ok());
  const auto failure = *driver.FirstFailure();
  EXPECT_TRUE(failure.validation_ran);
  EXPECT_TRUE(failure.impact_confirmed);
}

TEST(WatchdogDriverTest, UnconfirmedAlarmSuppressedWhenConfigured) {
  RealClock& clock = RealClock::Instance();
  RecordingListener listener;
  WatchdogDriver::Options options;
  options.validation_probe = [] { return Status::Ok(); };  // clients are fine
  options.suppress_unconfirmed = true;
  WatchdogDriver driver(clock, options);
  driver.AddListener(&listener);
  driver.AddChecker(std::make_unique<MimicChecker>(
      "m", "kvs.flusher", nullptr,
      [](const CheckContext&, MimicChecker& self) {
        return CheckResult::Fail(self.MakeSignature(
            FailureType::kOperationError, {"kvs.flusher", "Flush", "disk.write", 1},
            StatusCode::kIoError, "transient"));
      },
      FastChecker()));
  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(200));
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_GE(driver.suppressed_count(), 1);
  EXPECT_TRUE(listener.signatures().empty());          // suppressed from listeners
  ASSERT_FALSE(driver.Failures().empty());             // still recorded, flagged
  EXPECT_FALSE(driver.Failures()[0].impact_confirmed);
}

TEST(WatchdogDriverTest, RecoveryActionInvokedOnMatchingComponent) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver driver(clock);
  std::atomic<int> recovered{0};
  CallbackRecovery recovery([&](const FailureSignature&) { ++recovered; });
  driver.AddRecoveryAction("kvs.flusher", &recovery);
  std::atomic<int> other{0};
  CallbackRecovery other_recovery([&](const FailureSignature&) { ++other; });
  driver.AddRecoveryAction("kvs.indexer", &other_recovery);
  driver.AddChecker(std::make_unique<MimicChecker>(
      "m", "kvs.flusher", nullptr,
      [](const CheckContext&, MimicChecker& self) {
        return CheckResult::Fail(self.MakeSignature(
            FailureType::kOperationError, {"kvs.flusher", "Flush", "disk.write", 1},
            StatusCode::kIoError, "x"));
      },
      FastChecker()));
  ASSERT_TRUE(driver.Start().ok());
  ASSERT_TRUE(driver.WaitForFailure(Sec(2)));
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_GE(recovered.load(), 1);
  EXPECT_EQ(other.load(), 0);
}

TEST(WatchdogDriverTest, NotReadyContextNeverRunsBody) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver driver(clock);
  CheckContext ctx("never_ready");
  std::atomic<int> bodies{0};
  driver.AddChecker(std::make_unique<MimicChecker>(
      "m", "kvs.flusher", &ctx,
      [&](const CheckContext&, MimicChecker&) {
        ++bodies;
        return CheckResult::Pass();
      },
      FastChecker()));
  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(80));
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_EQ(bodies.load(), 0);
  EXPECT_GE(driver.StatsFor("m").context_not_ready, 2);
}

TEST(WatchdogDriverTest, HungCheckerSuspendedNotRestacked) {
  // While one execution is stuck, the driver must not pile further threads
  // onto the same hung op.
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  FaultSpec hang;
  hang.id = "h";
  hang.site_pattern = "op";
  hang.kind = FaultKind::kHang;
  injector.Inject(hang);
  WatchdogDriver::Options options;
  options.release_on_stop = [&] { injector.ClearAll(); };
  WatchdogDriver driver(clock, options);
  std::atomic<int> entries{0};
  driver.AddChecker(std::make_unique<MimicChecker>(
      "m", "sys", nullptr,
      [&](const CheckContext&, MimicChecker&) {
        ++entries;
        injector.Act("op");
        return CheckResult::Pass();
      },
      FastChecker()));
  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(300));
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_EQ(entries.load(), 1);  // exactly one execution entered the hang
}

TEST(WatchdogDriverTest, PauseAndResumeChecker) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver driver(clock);
  std::atomic<int> runs{0};
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "p", "sys", [&] { ++runs; return Status::Ok(); }, FastChecker()));
  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(60));
  EXPECT_TRUE(driver.TrySetCheckerEnabled("p", false).ok());
  EXPECT_FALSE(driver.IsCheckerEnabled("p"));
  clock.SleepFor(Ms(30));  // let in-flight runs drain
  const int frozen = runs.load();
  clock.SleepFor(Ms(80));
  EXPECT_LE(runs.load(), frozen + 1);  // at most one straggler
  EXPECT_TRUE(driver.TrySetCheckerEnabled("p", true).ok());
  clock.SleepFor(Ms(80));
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_GT(runs.load(), frozen + 1);  // resumed
}

TEST(WatchdogDriverTest, TrySetCheckerEnabledUnknownName) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver driver(clock);
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "p", "sys", [] { return Status::Ok(); }, FastChecker()));
  const Status status = driver.TrySetCheckerEnabled("no-such-checker", false);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(driver.IsCheckerEnabled("p"));
}

TEST(WatchdogDriverTest, StartStopLifecycleStatuses) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver driver(clock);
  driver.AddChecker(std::make_unique<ProbeChecker>("p", "s", [] { return Status::Ok(); },
                                                   FastChecker()));
  ASSERT_TRUE(driver.Start().ok());
  const Status double_start = driver.Start();
  EXPECT_EQ(double_start.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(driver.running());
  EXPECT_TRUE(driver.Stop().ok());
  const Status double_stop = driver.Stop();
  EXPECT_EQ(double_stop.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(driver.running());
  EXPECT_EQ(driver.checker_count(), 1);
  // The driver is one-shot: a stopped driver cannot be restarted.
  EXPECT_EQ(driver.Start().code(), StatusCode::kFailedPrecondition);
}

TEST(WatchdogDriverTest, StopBeforeStartReturnsFailedPrecondition) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver driver(clock);
  EXPECT_EQ(driver.Stop().code(), StatusCode::kFailedPrecondition);
}

// Watchdog-on-the-watchdog: scripted metric sequences drive the alarm paths.
TEST(DriverHealthCheckerTest, AlarmsOnRejectionGrowthAndLagGauges) {
  DriverMetricsSnapshot m;
  DriverHealthChecker::Thresholds t;  // defaults: growth>=1, 2 consecutive
  DriverHealthChecker checker("driver_watch", [&] { return m; }, t);

  // First sample only anchors the baseline — even a nonzero total passes.
  m.queue_rejections = 7;
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);
  // Flat counters and quiet gauges: healthy.
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);

  // Rejections grow across two consecutive samples → debounced, then alarm.
  m.queue_rejections = 9;
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);  // 1st violation
  m.queue_rejections = 12;
  const CheckResult shed = checker.Check();
  ASSERT_EQ(shed.outcome, CheckOutcome::kFail);
  EXPECT_EQ(shed.signature.type, FailureType::kSafetyViolation);
  EXPECT_EQ(shed.signature.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.signature.location.component, "wdg.driver");
  EXPECT_NE(shed.signature.message.find("shed"), std::string::npos);

  // A single scheduler-lag spike is debounced away by a healthy sample.
  m.scheduler_lag_ns = 200.0 * kNsPerMs;
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);
  m.scheduler_lag_ns = 0;
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);

  // Sustained p99 queue delay over threshold alarms with the gauge named.
  m.queue_delay_p99_ns = 500.0 * kNsPerMs;
  EXPECT_EQ(checker.Check().outcome, CheckOutcome::kPass);
  const CheckResult lag = checker.Check();
  ASSERT_EQ(lag.outcome, CheckOutcome::kFail);
  EXPECT_NE(lag.signature.message.find("queue delay"), std::string::npos);
}

// Wired against a real driver: a probe fleet saturating a tiny queue sheds
// submits, and the health checker — sampling the same driver it could run
// on — turns the rejection growth into a wdg.driver safety violation.
TEST(DriverHealthCheckerTest, SeesRealDriverRejections) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options;
  options.executor.workers = 1;
  options.executor.queue_capacity = 2;  // far smaller than the fleet
  WatchdogDriver driver(clock, options);
  for (int i = 0; i < 32; ++i) {
    driver.AddChecker(std::make_unique<ProbeChecker>(
        StrFormat("sat%02d", i), "sys",
        [&clock] {
          clock.SleepFor(Ms(2));  // keep the worker busy so the queue fills
          return Status::Ok();
        },
        FastChecker()));
  }

  DriverHealthChecker::Thresholds t;
  t.consecutive_needed = 1;
  DriverHealthChecker health("driver_watch",
                             [&] { return driver.DriverMetrics(); }, t);
  EXPECT_EQ(health.Check().outcome, CheckOutcome::kPass);  // baseline anchor

  ASSERT_TRUE(driver.Start().ok());
  // Wait until backpressure has provably shed at least one submit.
  for (int i = 0; i < 100 && driver.DriverMetrics().queue_rejections == 0; ++i) {
    clock.SleepFor(Ms(10));
  }
  ASSERT_GT(driver.DriverMetrics().queue_rejections, 0);
  const CheckResult result = health.Check();
  EXPECT_TRUE(driver.Stop().ok());
  ASSERT_EQ(result.outcome, CheckOutcome::kFail);
  EXPECT_EQ(result.signature.location.component, "wdg.driver");
  EXPECT_NE(result.signature.message.find("shed"), std::string::npos);
}

// ---------------------------------------------------------- CheckerBuilder

TEST(CheckerBuilderTest, BuildsMimicChecker) {
  CheckContext ctx("c");
  auto built = CheckerBuilder("flush-mimic")
                   .Component("kvs.flusher")
                   .Interval(Ms(50))
                   .Deadline(Ms(200))
                   .WithContext(&ctx)
                   .Mimic([](const CheckContext&, MimicChecker&) {
                     return CheckResult::Pass();
                   })
                   .Build();
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ((*built)->name(), "flush-mimic");
  EXPECT_EQ((*built)->component(), "kvs.flusher");
  EXPECT_EQ((*built)->type(), CheckerType::kMimic);
  EXPECT_EQ((*built)->options().interval, Ms(50));
  EXPECT_EQ((*built)->options().timeout, Ms(200));
}

TEST(CheckerBuilderTest, ContextFactoryResolvedAtBuild) {
  HookSet hooks;
  auto built = CheckerBuilder("m")
                   .ContextFactory([&] { return hooks.Context("late_ctx"); })
                   .Mimic([](const CheckContext&, MimicChecker&) {
                     return CheckResult::Pass();
                   })
                   .Build();
  ASSERT_TRUE(built.ok()) << built.status();
  // Null factory result is a typed error, not a crash.
  auto bad = CheckerBuilder("m2")
                 .ContextFactory([]() -> CheckContext* { return nullptr; })
                 .Mimic([](const CheckContext&, MimicChecker&) {
                   return CheckResult::Pass();
                 })
                 .Build();
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckerBuilderTest, RejectsMisconfiguration) {
  const auto mimic_body = [](const CheckContext&, MimicChecker&) {
    return CheckResult::Pass();
  };
  const auto probe_body = [] { return Status::Ok(); };
  CheckContext ctx("c");

  // Empty name.
  EXPECT_EQ(CheckerBuilder("").Probe(probe_body).Build().status().code(),
            StatusCode::kInvalidArgument);
  // No body.
  EXPECT_EQ(CheckerBuilder("x").Build().status().code(), StatusCode::kInvalidArgument);
  // Two bodies.
  EXPECT_EQ(CheckerBuilder("x").Probe(probe_body).Mimic(mimic_body).Build().status().code(),
            StatusCode::kInvalidArgument);
  // Non-positive interval / deadline / debounce.
  EXPECT_EQ(CheckerBuilder("x").Probe(probe_body).Interval(0).Build().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CheckerBuilder("x").Probe(probe_body).Deadline(-1).Build().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CheckerBuilder("x").Probe(probe_body).Debounce(0).Build().status().code(),
            StatusCode::kInvalidArgument);
  // Probe body takes no context; mimic requires one; Debounce is probe/signal.
  EXPECT_EQ(
      CheckerBuilder("x").Probe(probe_body).WithContext(&ctx).Build().status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(CheckerBuilder("x").Mimic(mimic_body).Build().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      CheckerBuilder("x").Mimic(mimic_body).WithContext(&ctx).Debounce(2).Build().status().code(),
      StatusCode::kInvalidArgument);
  // WithContext and ContextFactory are mutually exclusive.
  EXPECT_EQ(CheckerBuilder("x")
                .Mimic(mimic_body)
                .WithContext(&ctx)
                .ContextFactory([&] { return &ctx; })
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckerBuilderTest, RegisterWithRejectsDuplicatesAndRunningDriver) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver driver(clock);
  const auto probe_body = [] { return Status::Ok(); };

  EXPECT_TRUE(CheckerBuilder("p").Probe(probe_body).RegisterWith(driver).ok());
  // Duplicate name is a typed error, not a second slot.
  EXPECT_EQ(CheckerBuilder("p").Probe(probe_body).RegisterWith(driver).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(driver.checker_count(), 1);

  ASSERT_TRUE(driver.Start().ok());
  EXPECT_EQ(CheckerBuilder("q").Probe(probe_body).RegisterWith(driver).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(driver.SetValidationProbe(probe_body, Ms(100)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(driver.Stop().ok());
}

TEST(CheckerBuilderTest, InstallsEscalationProbe) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver driver(clock);
  std::atomic<int> probes{0};
  CheckContext ctx("c");
  ctx.MarkReady(1);
  // A failing mimic escalates to the validation probe (§5.1); the probe
  // passing tags the alarm no-client-impact.
  Status status = CheckerBuilder("m")
                      .Component("kvs")
                      .Interval(Ms(5))
                      .Deadline(Ms(100))
                      .WithContext(&ctx)
                      .Mimic([](const CheckContext& c, MimicChecker& self) {
                        SourceLocation loc{"kvs", "f", "disk.write", 1};
                        return CheckResult::Fail(self.MakeSignature(
                            FailureType::kOperationError, loc, StatusCode::kIoError,
                            "boom", c.Dump()));
                      })
                      .EscalationProbe([&] {
                        ++probes;
                        return Status::Ok();
                      })
                      .RegisterWith(driver);
  ASSERT_TRUE(status.ok()) << status;
  ASSERT_TRUE(driver.Start().ok());
  ASSERT_TRUE(driver.WaitForFailure(Sec(5)));
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_GT(probes.load(), 0);
  ASSERT_TRUE(driver.FirstFailure().has_value());
  EXPECT_FALSE(driver.FirstFailure()->impact_confirmed);
}

}  // namespace
}  // namespace wdg
