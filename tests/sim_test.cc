// Unit tests for the simulated disk and network.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/checksum.h"
#include "src/sim/sim_disk.h"
#include "src/sim/sim_net.h"

namespace wdg {
namespace {

class SimDiskTest : public ::testing::Test {
 protected:
  SimDiskTest() : injector_(clock_), disk_(clock_, injector_, FastDisk()) {}

  static DiskOptions FastDisk() {
    DiskOptions options;
    options.base_latency = 0;
    options.per_kb_latency = 0;
    return options;
  }

  RealClock& clock_ = RealClock::Instance();
  FaultInjector injector_;
  SimDisk disk_;
};

TEST_F(SimDiskTest, CreateWriteReadRoundtrip) {
  ASSERT_TRUE(disk_.Create("/wal/log.0").ok());
  ASSERT_TRUE(disk_.Write("/wal/log.0", 0, "hello").ok());
  const auto data = disk_.ReadAll("/wal/log.0");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello");
}

TEST_F(SimDiskTest, WriteAtOffsetExtends) {
  ASSERT_TRUE(disk_.Create("/f").ok());
  ASSERT_TRUE(disk_.Write("/f", 3, "abc").ok());
  const auto data = disk_.ReadAll("/f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 6u);
  EXPECT_EQ(data->substr(3), "abc");
}

TEST_F(SimDiskTest, AppendAccumulates) {
  ASSERT_TRUE(disk_.Create("/f").ok());
  ASSERT_TRUE(disk_.Append("/f", "ab").ok());
  ASSERT_TRUE(disk_.Append("/f", "cd").ok());
  EXPECT_EQ(*disk_.ReadAll("/f"), "abcd");
  EXPECT_EQ(*disk_.Size("/f"), 4);
}

TEST_F(SimDiskTest, MissingFileErrors) {
  EXPECT_EQ(disk_.ReadAll("/nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(disk_.Delete("/nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(disk_.Fsync("/nope").code(), StatusCode::kNotFound);
  EXPECT_FALSE(disk_.Exists("/nope"));
}

TEST_F(SimDiskTest, DoubleCreateFails) {
  ASSERT_TRUE(disk_.Create("/f").ok());
  EXPECT_EQ(disk_.Create("/f").code(), StatusCode::kAlreadyExists);
}

TEST_F(SimDiskTest, RenameMovesContent) {
  ASSERT_TRUE(disk_.Create("/a").ok());
  ASSERT_TRUE(disk_.Append("/a", "data").ok());
  ASSERT_TRUE(disk_.Rename("/a", "/b").ok());
  EXPECT_FALSE(disk_.Exists("/a"));
  EXPECT_EQ(*disk_.ReadAll("/b"), "data");
}

TEST_F(SimDiskTest, ListByPrefix) {
  ASSERT_TRUE(disk_.Create("/sst/1").ok());
  ASSERT_TRUE(disk_.Create("/sst/2").ok());
  ASSERT_TRUE(disk_.Create("/wal/1").ok());
  const auto files = disk_.List("/sst/");
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "/sst/1");
}

TEST_F(SimDiskTest, DeleteReclaimsSpace) {
  ASSERT_TRUE(disk_.Create("/f").ok());
  ASSERT_TRUE(disk_.Append("/f", std::string(1000, 'x')).ok());
  EXPECT_EQ(disk_.used_bytes(), 1000);
  ASSERT_TRUE(disk_.Delete("/f").ok());
  EXPECT_EQ(disk_.used_bytes(), 0);
}

TEST_F(SimDiskTest, CapacityEnforced) {
  DiskOptions tiny = FastDisk();
  tiny.capacity_bytes = 100;
  SimDisk disk(clock_, injector_, tiny);
  ASSERT_TRUE(disk.Create("/f").ok());
  EXPECT_TRUE(disk.Append("/f", std::string(100, 'x')).ok());
  EXPECT_EQ(disk.Append("/f", "y").code(), StatusCode::kResourceExhausted);
}

TEST_F(SimDiskTest, BadRangeCorruptsReads) {
  ASSERT_TRUE(disk_.Create("/part").ok());
  const std::string payload = "all good data here";
  ASSERT_TRUE(disk_.Append("/part", payload).ok());
  const uint32_t good_crc = Crc32(payload);
  disk_.MarkBadRange("/part", 4, 4);
  const auto data = disk_.ReadAll("/part");
  ASSERT_TRUE(data.ok());
  EXPECT_NE(Crc32(*data), good_crc);
  // Outside the bad range the bytes are intact.
  EXPECT_EQ(data->substr(0, 4), payload.substr(0, 4));
  disk_.ClearBadRanges();
  EXPECT_EQ(Crc32(*disk_.ReadAll("/part")), good_crc);
}

TEST_F(SimDiskTest, InjectedWriteErrorSurfaces) {
  FaultSpec spec;
  spec.id = "werr";
  spec.site_pattern = "disk.write";
  spec.kind = FaultKind::kError;
  injector_.Inject(spec);
  ASSERT_TRUE(disk_.Create("/f").ok());
  EXPECT_EQ(disk_.Write("/f", 0, "x").code(), StatusCode::kIoError);
  injector_.ClearAll();
  EXPECT_TRUE(disk_.Write("/f", 0, "x").ok());
}

TEST_F(SimDiskTest, SilentDropLosesWriteButReportsSuccess) {
  FaultSpec spec;
  spec.id = "lost";
  spec.site_pattern = "disk.append";
  spec.kind = FaultKind::kSilentDrop;
  injector_.Inject(spec);
  ASSERT_TRUE(disk_.Create("/f").ok());
  EXPECT_TRUE(disk_.Append("/f", "vanished").ok());  // success reported...
  injector_.ClearAll();
  EXPECT_EQ(disk_.ReadAll("/f")->size(), 0u);  // ...but nothing stored
}

TEST_F(SimDiskTest, SlowFactorMultipliesLatency) {
  DiskOptions slow;
  slow.base_latency = Ms(1);
  slow.per_kb_latency = 0;
  SimDisk disk(clock_, injector_, slow);
  ASSERT_TRUE(disk.Create("/f").ok());
  disk.SetSlowFactor(20.0);  // fail-slow: 20x
  const TimeNs start = clock_.NowNs();
  ASSERT_TRUE(disk.Append("/f", "x").ok());
  EXPECT_GE(clock_.NowNs() - start, Ms(15));
}

TEST_F(SimDiskTest, ScratchNamespaceIsolatedAndPurgeable) {
  const std::string scratch = SimDisk::ScratchPath("flush_checker", "probe.dat");
  EXPECT_TRUE(SimDisk::IsScratchPath(scratch));
  EXPECT_FALSE(SimDisk::IsScratchPath("/wal/log.0"));
  ASSERT_TRUE(disk_.Create(scratch).ok());
  ASSERT_TRUE(disk_.Append(scratch, "checker data").ok());
  ASSERT_TRUE(disk_.Create("/real").ok());
  disk_.PurgeScratch("flush_checker");
  EXPECT_FALSE(disk_.Exists(scratch));
  EXPECT_TRUE(disk_.Exists("/real"));
}

class SimNetTest : public ::testing::Test {
 protected:
  SimNetTest() : injector_(clock_), net_(clock_, injector_, FastNet()) {}

  static NetOptions FastNet() {
    NetOptions options;
    options.base_latency = Us(10);
    options.per_kb_latency = 0;
    return options;
  }

  RealClock& clock_ = RealClock::Instance();
  FaultInjector injector_;
  SimNet net_;
};

TEST_F(SimNetTest, SendRecvRoundtrip) {
  Endpoint* a = net_.CreateEndpoint("a");
  Endpoint* b = net_.CreateEndpoint("b");
  ASSERT_TRUE(a->Send("b", "ping", "payload").ok());
  const auto msg = b->Recv(Ms(200));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->src, "a");
  EXPECT_EQ(msg->type, "ping");
  EXPECT_EQ(msg->payload, "payload");
}

TEST_F(SimNetTest, RecvTimesOutOnSilence) {
  Endpoint* a = net_.CreateEndpoint("a");
  EXPECT_FALSE(a->Recv(Ms(20)).has_value());
}

TEST_F(SimNetTest, SendToUnknownNodeFails) {
  Endpoint* a = net_.CreateEndpoint("a");
  EXPECT_EQ(a->Send("ghost", "t", "p").code(), StatusCode::kUnavailable);
}

TEST_F(SimNetTest, CallGetsReply) {
  Endpoint* client = net_.CreateEndpoint("client");
  Endpoint* server = net_.CreateEndpoint("server");
  std::thread server_thread([&] {
    const auto req = server->Recv(Sec(5));
    ASSERT_TRUE(req.has_value());
    ASSERT_TRUE(server->Reply(*req, "pong:" + req->payload).ok());
  });
  const auto reply = client->Call("server", "echo", "hi", Sec(5));
  server_thread.join();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "pong:hi");
}

TEST_F(SimNetTest, CallTimesOutWithoutServer) {
  Endpoint* client = net_.CreateEndpoint("client");
  net_.CreateEndpoint("mute");
  const auto reply = client->Call("mute", "echo", "hi", Ms(30));
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
}

TEST_F(SimNetTest, PartitionDropsSilently) {
  Endpoint* a = net_.CreateEndpoint("a");
  Endpoint* b = net_.CreateEndpoint("b");
  net_.Partition("a", "b");
  EXPECT_TRUE(net_.IsPartitioned("b", "a"));
  EXPECT_TRUE(a->Send("b", "t", "p").ok());  // vanishes like a dropped packet
  EXPECT_FALSE(b->Recv(Ms(20)).has_value());
  net_.Heal("a", "b");
  EXPECT_TRUE(a->Send("b", "t", "p2").ok());
  const auto msg = b->Recv(Ms(200));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "p2");
}

TEST_F(SimNetTest, DropProbabilityLosesSomeMessages) {
  Endpoint* a = net_.CreateEndpoint("a");
  Endpoint* b = net_.CreateEndpoint("b");
  net_.set_drop_probability(0.5);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(a->Send("b", "t", "x").ok());
  }
  net_.set_drop_probability(0.0);
  int received = 0;
  while (b->Recv(Ms(10)).has_value()) {
    ++received;
  }
  EXPECT_GT(received, 40);
  EXPECT_LT(received, 160);
}

TEST_F(SimNetTest, InjectedSendHangBlocksSender) {
  Endpoint* a = net_.CreateEndpoint("a");
  net_.CreateEndpoint("b");
  FaultSpec spec;
  spec.id = "linkhang";
  spec.site_pattern = "net.send.b";
  spec.kind = FaultKind::kHang;
  injector_.Inject(spec);
  std::atomic<bool> sent{false};
  std::thread sender([&] {
    (void)a->Send("b", "t", "p");  // blocks — the ZK-2201 shape
    sent = true;
  });
  while (injector_.parked_thread_count() == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(sent.load());
  injector_.ClearAll();
  sender.join();
}

TEST_F(SimNetTest, CorruptionMangledInFlight) {
  Endpoint* a = net_.CreateEndpoint("a");
  Endpoint* b = net_.CreateEndpoint("b");
  FaultSpec spec;
  spec.id = "bitrot";
  spec.site_pattern = "net.send.b";
  spec.kind = FaultKind::kCorruption;
  injector_.Inject(spec);
  ASSERT_TRUE(a->Send("b", "t", "important payload").ok());
  const auto msg = b->Recv(Ms(200));
  ASSERT_TRUE(msg.has_value());
  EXPECT_NE(msg->payload, "important payload");
}

TEST_F(SimNetTest, EndpointIdempotentCreation) {
  EXPECT_EQ(net_.CreateEndpoint("x"), net_.CreateEndpoint("x"));
  EXPECT_EQ(net_.GetEndpoint("x"), net_.CreateEndpoint("x"));
  EXPECT_EQ(net_.GetEndpoint("absent"), nullptr);
}

TEST_F(SimNetTest, LatencyDelaysDelivery) {
  NetOptions slow;
  slow.base_latency = Ms(30);
  SimNet net(clock_, injector_, slow);
  Endpoint* a = net.CreateEndpoint("a");
  Endpoint* b = net.CreateEndpoint("b");
  ASSERT_TRUE(a->Send("b", "t", "p").ok());
  EXPECT_FALSE(b->Recv(Ms(5)).has_value());  // not yet deliverable
  EXPECT_TRUE(b->Recv(Ms(200)).has_value());
}

}  // namespace
}  // namespace wdg
