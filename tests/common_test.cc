// Unit tests for src/common: status, result, strings, checksum, config,
// metrics, rng, clock, threading.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/common/checksum.h"
#include "src/common/clock.h"
#include "src/common/config.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/threading.h"

namespace wdg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = TimeoutError("flush stalled");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_EQ(s.ToString(), "TIMEOUT: flush stalled");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusTest, FactoryHelpersSetExpectedCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(CorruptionError("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubled(Result<int> input) {
  WDG_ASSIGN_OR_RETURN(const int v, input);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(InternalError("boom")).status().code(), StatusCode::kInternal);
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "x", 7), "x=7");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringsTest, StrSplit) {
  const auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(StrTrim("  x \n"), "x");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringsTest, SitePatternMatching) {
  EXPECT_TRUE(SitePatternMatches("*", "anything.at.all"));
  EXPECT_TRUE(SitePatternMatches("disk.*", "disk.write"));
  EXPECT_FALSE(SitePatternMatches("disk.*", "net.send"));
  EXPECT_TRUE(SitePatternMatches("disk.write", "disk.write"));
  EXPECT_FALSE(SitePatternMatches("disk.write", "disk.writeX"));
}

TEST(ChecksumTest, KnownVector) {
  // CRC32("123456789") == 0xCBF43926 (classic check value).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(ChecksumTest, ExtendMatchesWhole) {
  const uint32_t whole = Crc32("hello world");
  const uint32_t split = Crc32Extend(Crc32("hello "), "world");
  EXPECT_EQ(whole, split);
}

TEST(ChecksumTest, DetectsSingleBitFlip) {
  std::string data = "the quick brown fox";
  const uint32_t before = Crc32(data);
  data[3] ^= 0x01;
  EXPECT_NE(before, Crc32(data));
}

TEST(ConfigTest, TypedAccessorsAndDefaults) {
  ConfigStore config;
  config.ParseInline("threads=4, ratio=0.5, verbose=true, name=kvs");
  EXPECT_EQ(config.GetInt("threads"), 4);
  EXPECT_DOUBLE_EQ(config.GetDouble("ratio"), 0.5);
  EXPECT_TRUE(config.GetBool("verbose"));
  EXPECT_EQ(config.GetString("name"), "kvs");
  EXPECT_EQ(config.GetInt("missing", 9), 9);
  EXPECT_FALSE(config.Has("missing"));
}

TEST(ConfigTest, BareKeyIsTrue) {
  ConfigStore config;
  config.ParseInline("fast");
  EXPECT_TRUE(config.GetBool("fast"));
}

TEST(MetricsTest, CounterAndGauge) {
  MetricsRegistry registry;
  registry.GetCounter("ops")->Increment(3);
  registry.GetCounter("ops")->Increment();
  registry.GetGauge("depth")->Set(17.5);
  EXPECT_EQ(registry.GetCounter("ops")->Value(), 4);
  EXPECT_DOUBLE_EQ(registry.GetGauge("depth")->Value(), 17.5);
  const auto snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.at("ops"), 4.0);
}

TEST(MetricsTest, HistogramStats) {
  Histogram hist;
  for (int i = 1; i <= 100; ++i) {
    hist.Record(i);
  }
  EXPECT_EQ(hist.count(), 100);
  EXPECT_DOUBLE_EQ(hist.Min(), 1);
  EXPECT_DOUBLE_EQ(hist.Max(), 100);
  EXPECT_DOUBLE_EQ(hist.Mean(), 50.5);
  EXPECT_NEAR(hist.Percentile(50), 50, 2);
  EXPECT_NEAR(hist.Percentile(99), 99, 2);
}

TEST(MetricsTest, StablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter(StrFormat("c%d", i));
  }
  EXPECT_EQ(a, registry.GetCounter("x"));
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Uniform(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(SimClockTest, AdvanceWakesSleepers) {
  SimClock clock;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.SleepFor(Ms(100));
    woke = true;
  });
  while (clock.sleeper_count() == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(woke.load());
  clock.Advance(Ms(50));
  EXPECT_FALSE(woke.load());
  clock.Advance(Ms(60));
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(clock.NowNs(), Ms(110));
}

TEST(SimClockTest, ShutdownReleasesSleepers) {
  SimClock clock;
  std::thread sleeper([&] { clock.SleepFor(Sec(100)); });
  while (clock.sleeper_count() == 0) {
    std::this_thread::yield();
  }
  clock.Shutdown();
  sleeper.join();  // must not hang
}

TEST(RealClockTest, MonotoneAndSleeps) {
  RealClock& clock = RealClock::Instance();
  const TimeNs a = clock.NowNs();
  clock.SleepFor(Ms(5));
  const TimeNs b = clock.NowNs();
  EXPECT_GE(b - a, Ms(4));
}

TEST(ClockTest, WaitUntilPredicate) {
  SimClock clock;
  std::atomic<int> calls{0};
  std::thread advancer([&] {
    while (clock.NowNs() < Ms(50)) {
      clock.Advance(Ms(10));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const bool ok = clock.WaitUntil(Ms(100), [&] { return ++calls > 3; }, Ms(5));
  advancer.join();
  EXPECT_TRUE(ok);
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.Push(i, Ms(10)));
  }
  for (int i = 0; i < 5; ++i) {
    const auto v = queue.Pop(Ms(10));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, PushTimesOutWhenFull) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1, Ms(5)));
  EXPECT_FALSE(queue.Push(2, Ms(5)));
}

TEST(BoundedQueueTest, PopTimesOutWhenEmpty) {
  BoundedQueue<int> queue(1);
  EXPECT_FALSE(queue.Pop(Ms(5)).has_value());
}

TEST(BoundedQueueTest, ShutdownUnblocksWaiters) {
  BoundedQueue<int> queue(1);
  std::thread popper([&] { EXPECT_FALSE(queue.Pop(Sec(60)).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Shutdown();
  popper.join();
  EXPECT_FALSE(queue.Push(1, Ms(5)));
}

TEST(BoundedQueueTest, ConcurrentProducersConsumers) {
  BoundedQueue<int> queue(16);
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(queue.Push(p * 100 + i, Sec(5)));
      }
    });
  }
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        const auto v = queue.Pop(Sec(5));
        ASSERT_TRUE(v.has_value());
        sum += *v;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  int expected = 0;
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 100; ++i) {
      expected += p * 100 + i;
    }
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(StopFlagTest, WaitForReactsToRequest) {
  StopFlag flag;
  EXPECT_FALSE(flag.WaitFor(Ms(5)));
  std::thread requester([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    flag.Request();
  });
  EXPECT_TRUE(flag.WaitFor(Sec(5)));
  requester.join();
  EXPECT_TRUE(flag.Requested());
}

TEST(LoggingTest, CaptureSinkSeesMessages) {
  CaptureSink sink;
  Logger::Instance().AddSink(&sink);
  Logger::Instance().set_min_level(LogLevel::kInfo);
  WDG_LOG(kInfo) << "hello " << 42;
  WDG_LOG(kDebug) << "should be filtered";
  Logger::Instance().set_min_level(LogLevel::kWarn);
  Logger::Instance().RemoveSink(&sink);
  EXPECT_TRUE(sink.Contains("hello 42"));
  EXPECT_FALSE(sink.Contains("filtered"));
}

TEST(LogicalTimeTest, ConversionMatchesConvention) {
  // 700 real ms == 7 logical (paper) seconds.
  EXPECT_DOUBLE_EQ(ToLogicalSeconds(Ms(700)), 7.0);
}

}  // namespace
}  // namespace wdg
