// Tests for the §5.1/§5.2 extension features: invariant mining (semantic
// checks) and the persistent failure log.
#include <gtest/gtest.h>

#include <memory>

#include "src/autowd/invariants.h"
#include "src/common/strings.h"
#include "src/watchdog/driver.h"
#include "src/watchdog/failure_log.h"

namespace wdg {
namespace {

// ------------------------------------------------------------ invariant miner

TEST(InvariantMinerTest, LearnsRangesFromHealthyObservations) {
  CheckContext ctx("repl_ctx");
  awd::InvariantMiner miner(ctx);
  miner.Observe();
  EXPECT_EQ(miner.observations(), 0);  // context not ready → no learning

  static const auto kBatchSize = ContextKey<int64_t>::Of("batch_size");
  static const auto kLagMs = ContextKey<double>::Of("lag_ms");
  static const auto kFollower = ContextKey<std::string>::Of("follower");
  for (int i = 1; i <= 20; ++i) {
    ctx.Set(kBatchSize, i % 8 + 1);                 // 1..8
    ctx.Set(kLagMs, 2.5 * (i % 4));                 // 0..7.5
    ctx.Set(kFollower, "kvs2");                     // non-numeric: skipped
    ctx.MarkReady(i);
    miner.Observe();
  }
  EXPECT_EQ(miner.observations(), 20);
  const auto invariants = miner.Invariants();
  ASSERT_EQ(invariants.size(), 2u);  // only the numeric variables
  for (const auto& inv : invariants) {
    if (inv.variable == "batch_size") {
      EXPECT_DOUBLE_EQ(inv.min, 1);
      EXPECT_DOUBLE_EQ(inv.max, 8);
    } else {
      EXPECT_EQ(inv.variable, "lag_ms");
      EXPECT_DOUBLE_EQ(inv.min, 0);
      EXPECT_DOUBLE_EQ(inv.max, 7.5);
    }
  }
}

TEST(RangeInvariantTest, ToleranceBandScalesWithMagnitude) {
  awd::RangeInvariant inv;
  inv.variable = "x";
  inv.min = 0;
  inv.max = 100;
  EXPECT_TRUE(inv.Holds(100, 0.5));
  EXPECT_TRUE(inv.Holds(149, 0.5));   // within max + 0.5*100
  EXPECT_FALSE(inv.Holds(151, 0.5));
  EXPECT_TRUE(inv.Holds(-49, 0.5));
  EXPECT_FALSE(inv.Holds(-51, 0.5));
  // Tiny ranges still get a usable band (scale floor of 1).
  awd::RangeInvariant small;
  small.variable = "y";
  small.min = 0.1;
  small.max = 0.2;
  EXPECT_TRUE(small.Holds(0.6, 0.5));
  EXPECT_FALSE(small.Holds(0.8, 0.5));
}

TEST(InvariantCheckerTest, TrainsThenFlagsAnomaly) {
  RealClock& clock = RealClock::Instance();
  HookSet hooks;
  CheckContext* ctx = hooks.Context("repl_ctx");
  auto miner = std::make_shared<awd::InvariantMiner>(*ctx);

  CheckerOptions options;
  options.interval = Ms(5);
  options.timeout = Ms(100);
  WatchdogDriver driver(clock);
  driver.AddChecker(awd::MakeInvariantChecker("repl_invariants", "kvs.replication", ctx,
                                              miner, /*tolerance=*/0.5,
                                              /*min_training_samples=*/5, options));
  ASSERT_TRUE(driver.Start().ok());

  // Healthy phase: batch sizes 1..16.
  static const auto kBatchSize = ContextKey<int64_t>::Of("batch_size");
  for (int i = 0; i < 30; ++i) {
    ctx->Set(kBatchSize, i % 16 + 1);
    ctx->MarkReady(clock.NowNs());
    clock.SleepFor(Ms(3));
  }
  EXPECT_TRUE(driver.Failures().empty());
  EXPECT_GE(miner->observations(), 5);

  // Anomaly: the queue suddenly explodes (a stuck consumer downstream).
  ctx->Set(kBatchSize, 5000);
  ctx->MarkReady(clock.NowNs());
  ASSERT_TRUE(driver.WaitForFailure(Sec(2)));
  EXPECT_TRUE(driver.Stop().ok());
  const auto failure = *driver.FirstFailure();
  EXPECT_EQ(failure.type, FailureType::kSafetyViolation);
  EXPECT_NE(failure.message.find("invariant violated"), std::string::npos);
  EXPECT_NE(failure.message.find("batch_size"), std::string::npos);
  EXPECT_EQ(failure.location.component, "kvs.replication");
}

TEST(InvariantCheckerTest, NeverJudgesWhileUndertrained) {
  RealClock& clock = RealClock::Instance();
  HookSet hooks;
  CheckContext* ctx = hooks.Context("c");
  auto miner = std::make_shared<awd::InvariantMiner>(*ctx);
  CheckerOptions options;
  options.interval = Ms(5);
  WatchdogDriver driver(clock);
  driver.AddChecker(awd::MakeInvariantChecker("inv", "comp", ctx, miner, 0.5,
                                              /*min_training_samples=*/1000, options));
  ASSERT_TRUE(driver.Start().ok());
  static const auto kX = ContextKey<int64_t>::Of("x");
  ctx->Set(kX, 1);
  ctx->MarkReady(1);
  clock.SleepFor(Ms(60));
  ctx->Set(kX, 999999);  // would violate, but the model is too young
  ctx->MarkReady(2);
  clock.SleepFor(Ms(60));
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_TRUE(driver.Failures().empty());
}

// --------------------------------------------------------------- failure log

FailureSignature SampleSignature() {
  FailureSignature sig;
  sig.type = FailureType::kLivenessTimeout;
  sig.checker_name = "ProcessorLoop_reduced";
  sig.location = {"zk.sync_processor", "ProcessWrite", "lock.zk.commit", 1};
  sig.code = StatusCode::kTimeout;
  sig.message = "commit critical section held too long\nwith a newline\tand tab";
  sig.context_dump = "{follower=zk-f1, txn_bytes=14}";
  sig.detect_time = 123456789;
  sig.checker_kind = "mimic";
  return sig;
}

TEST(FailureLogTest, RecordRoundtripPreservesEverything) {
  const FailureSignature sig = SampleSignature();
  const std::string line = FailureLog::EncodeRecord(sig);
  const auto decoded = FailureLog::DecodeRecord(
      line.substr(0, line.size() - 1));  // strip trailing newline
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, sig.type);
  EXPECT_EQ(decoded->checker_name, sig.checker_name);
  EXPECT_EQ(decoded->location.component, sig.location.component);
  EXPECT_EQ(decoded->location.function, sig.location.function);
  EXPECT_EQ(decoded->location.op_site, sig.location.op_site);
  EXPECT_EQ(decoded->location.instr_id, sig.location.instr_id);
  EXPECT_EQ(decoded->code, sig.code);
  EXPECT_EQ(decoded->message, sig.message);  // escapes round-trip
  EXPECT_EQ(decoded->context_dump, sig.context_dump);
  EXPECT_EQ(decoded->detect_time, sig.detect_time);
  EXPECT_EQ(decoded->checker_kind, sig.checker_kind);
}

TEST(FailureLogTest, MalformedLinesRejected) {
  EXPECT_FALSE(FailureLog::DecodeRecord("garbage").ok());
  EXPECT_FALSE(FailureLog::DecodeRecord("a\tb\tc").ok());
}

TEST(FailureLogTest, PersistsAcrossReload) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  SimDisk disk(clock, injector, DiskOptions{.base_latency = 0, .per_kb_latency = 0});

  {
    FailureLog log(disk, "/wdg/failures.log");
    FailureSignature a = SampleSignature();
    FailureSignature b = SampleSignature();
    b.checker_name = "FlushLoop_reduced";
    b.type = FailureType::kSafetyViolation;
    log.OnFailure(a);
    log.OnFailure(b);
    EXPECT_EQ(log.write_errors(), 0);
  }
  // "Restart": a fresh log object over the same disk.
  FailureLog reloaded(disk, "/wdg/failures.log");
  const auto records = reloaded.Load();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].checker_name, "ProcessorLoop_reduced");
  EXPECT_EQ((*records)[1].checker_name, "FlushLoop_reduced");
  EXPECT_EQ((*records)[1].type, FailureType::kSafetyViolation);
}

TEST(FailureLogTest, EmptyLogLoadsEmpty) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  SimDisk disk(clock, injector, DiskOptions{.base_latency = 0, .per_kb_latency = 0});
  FailureLog log(disk, "/never-written.log");
  const auto records = log.Load();
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(FailureLogTest, DriverIntegration) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  SimDisk disk(clock, injector, DiskOptions{.base_latency = 0, .per_kb_latency = 0});
  FailureLog log(disk, "/wdg/failures.log");

  WatchdogDriver driver(clock);
  driver.AddListener(&log);
  CheckerOptions options;
  options.interval = Ms(10);
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "p", "sys", [] { return IoError("persistent failure"); }, options));
  ASSERT_TRUE(driver.Start().ok());
  ASSERT_TRUE(driver.WaitForFailure(Sec(2)));
  EXPECT_TRUE(driver.Stop().ok());

  const auto records = log.Load();
  ASSERT_TRUE(records.ok());
  ASSERT_FALSE(records->empty());
  EXPECT_EQ((*records)[0].checker_name, "p");
  EXPECT_EQ((*records)[0].checker_kind, "probe");
}

}  // namespace
}  // namespace wdg
