// TimerWheel unit tests: exact delivery, cascading across levels, the
// conservative NextEventTime contract, overdue/overflow handling, and a
// randomized equivalence check against a multiset reference scheduler.
#include "src/watchdog/timer_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <vector>

namespace wdg {
namespace {

constexpr TimeNs kOrigin = Sec(5);
constexpr DurationNs kTick = Ms(1);

std::vector<uint64_t> PopAt(TimerWheel& wheel, TimeNs now) {
  std::vector<uint64_t> due;
  wheel.PopDue(now, &due);
  return due;
}

TEST(TimerWheelTest, DeliversAtExactTickNeverEarly) {
  TimerWheel wheel(kOrigin, kTick);
  wheel.Schedule(kOrigin + Ms(10), 42);
  // One ns before the due time: nothing (Schedule rounds up, PopDue floors).
  EXPECT_TRUE(PopAt(wheel, kOrigin + Ms(10) - 1).empty());
  EXPECT_EQ(wheel.size(), 1u);
  auto due = PopAt(wheel, kOrigin + Ms(10));
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 42u);
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_EQ(wheel.buckets_in_use(), 0u);
}

TEST(TimerWheelTest, SubTickScheduleRoundsUp) {
  TimerWheel wheel(kOrigin, kTick);
  // Due half a tick in: must not fire at a floor'd now before the next tick.
  wheel.Schedule(kOrigin + kTick / 2, 7);
  EXPECT_TRUE(PopAt(wheel, kOrigin + kTick - 1).empty());
  EXPECT_EQ(PopAt(wheel, kOrigin + kTick).size(), 1u);
}

TEST(TimerWheelTest, PastAndPresentTimesAreOverdue) {
  TimerWheel wheel(kOrigin, kTick);
  wheel.Schedule(kOrigin - Sec(1), 1);  // before the origin
  wheel.Schedule(kOrigin, 2);           // exactly the origin
  EXPECT_EQ(wheel.overdue_size(), 2u);
  ASSERT_TRUE(wheel.NextEventTime().has_value());
  EXPECT_LE(*wheel.NextEventTime(), kOrigin);  // deliverable immediately
  EXPECT_EQ(PopAt(wheel, kOrigin).size(), 2u);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheelTest, CascadesThroughEveryLevel) {
  TimerWheel wheel(kOrigin, kTick);
  // One entry per level horizon: 10 ticks (L0), ~200 (L1), ~8000 (L2),
  // ~300000 (L3), plus one past the top horizon (overflow).
  const std::map<uint64_t, int64_t> plan = {
      {0, 10}, {1, 200}, {2, 8000}, {3, 300000}, {4, 17000000}};
  for (const auto& [payload, ticks] : plan) {
    wheel.Schedule(kOrigin + ticks * kTick, payload);
  }
  EXPECT_EQ(wheel.overflow_size(), 1u);
  EXPECT_EQ(wheel.size(), plan.size());
  // Walk time forward via NextEventTime only; every entry must surface at
  // exactly its due tick regardless of how many cascades it crosses.
  std::map<uint64_t, TimeNs> fired;
  TimeNs now = kOrigin;
  for (int guard = 0; guard < 1000000 && wheel.size() > 0; ++guard) {
    auto next = wheel.NextEventTime();
    ASSERT_TRUE(next.has_value());
    ASSERT_GT(*next, now);  // conservative wake always advances
    now = *next;
    for (uint64_t payload : PopAt(wheel, now)) {
      fired[payload] = now;
    }
  }
  ASSERT_EQ(fired.size(), plan.size());
  for (const auto& [payload, ticks] : plan) {
    EXPECT_EQ(fired[payload], kOrigin + ticks * kTick) << "payload " << payload;
  }
  EXPECT_EQ(wheel.buckets_in_use(), 0u);
  EXPECT_EQ(wheel.overflow_size(), 0u);
}

TEST(TimerWheelTest, NextEventTimeIsConservativeAndProgresses) {
  TimerWheel wheel(kOrigin, kTick);
  const TimeNs due = kOrigin + 700 * kTick;  // level 1
  wheel.Schedule(due, 9);
  TimeNs now = kOrigin;
  int wakes = 0;
  while (true) {
    auto next = wheel.NextEventTime();
    ASSERT_TRUE(next.has_value());
    EXPECT_LE(*next, due);        // never past the true due time
    ASSERT_GT(*next, now);        // but always strictly advancing (no spin)
    now = *next;
    auto fired = PopAt(wheel, now);
    if (!fired.empty()) {
      EXPECT_EQ(now, due);  // delivered exactly on time
      break;
    }
    ASSERT_LT(++wakes, 64);  // a cascade wake or two, not a busy loop
  }
  EXPECT_FALSE(wheel.NextEventTime().has_value());
}

TEST(TimerWheelTest, ManyEntriesOneBucketTickUniqueness) {
  TimerWheel wheel(kOrigin, kTick);
  // 128 entries across two adjacent ticks far out — they share L1 buckets,
  // then must separate cleanly into distinct L0 ticks after the cascade.
  for (uint64_t i = 0; i < 64; ++i) {
    wheel.Schedule(kOrigin + 100 * kTick, i);
    wheel.Schedule(kOrigin + 101 * kTick, 64 + i);
  }
  auto first = PopAt(wheel, kOrigin + 100 * kTick);
  EXPECT_EQ(first.size(), 64u);
  EXPECT_TRUE(std::all_of(first.begin(), first.end(),
                          [](uint64_t p) { return p < 64; }));
  auto second = PopAt(wheel, kOrigin + 101 * kTick);
  EXPECT_EQ(second.size(), 64u);
  EXPECT_TRUE(std::all_of(second.begin(), second.end(),
                          [](uint64_t p) { return p >= 64; }));
}

TEST(TimerWheelTest, RandomizedAgainstMultisetReference) {
  std::mt19937_64 rng(0x7ee1d00d);
  TimerWheel wheel(kOrigin, kTick);
  std::multimap<TimeNs, uint64_t> reference;
  uint64_t next_payload = 0;
  TimeNs now = kOrigin;
  for (int round = 0; round < 2000; ++round) {
    // Mixed horizon: mostly near, a tail across cascade levels.
    const int64_t span[] = {3, 60, 500, 5000, 400000};
    const int64_t ticks = 1 + static_cast<int64_t>(
        rng() % static_cast<uint64_t>(span[rng() % 5]));
    const TimeNs when = now + ticks * kTick + static_cast<int64_t>(rng() % kTick);
    const int64_t due_tick = (when - kOrigin + kTick - 1) / kTick;  // wheel rounding
    wheel.Schedule(when, next_payload);
    reference.emplace(kOrigin + due_tick * kTick, next_payload);
    ++next_payload;
    // Advance a random amount and compare the fired sets.
    now += static_cast<int64_t>(rng() % 40) * kTick;
    std::vector<uint64_t> fired;
    wheel.PopDue(now, &fired);
    std::multiset<uint64_t> expected;
    for (auto it = reference.begin(); it != reference.end();) {
      if (it->first <= now) {
        expected.insert(it->second);
        it = reference.erase(it);
      } else {
        ++it;
      }
    }
    ASSERT_EQ(std::multiset<uint64_t>(fired.begin(), fired.end()), expected)
        << "round " << round;
    ASSERT_EQ(wheel.size(), reference.size()) << "round " << round;
  }
  // Drain everything; nothing may leak in any bucket.
  std::vector<uint64_t> rest;
  wheel.PopDue(now + 20000000 * kTick, &rest);
  EXPECT_EQ(rest.size(), reference.size());
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_EQ(wheel.buckets_in_use(), 0u);
  EXPECT_EQ(wheel.overdue_size(), 0u);
  EXPECT_EQ(wheel.overflow_size(), 0u);
}

}  // namespace
}  // namespace wdg
