// wdg-lint coverage: the three shipped IR models pass every pass family
// clean, and each rule fires on a minimal bad module with the rule name and
// pinpointed instruction id asserted.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/autowd/lint.h"
#include "src/ir/verifier.h"
#include "src/kvs/ir_model.h"
#include "src/minihdfs/ir_model.h"
#include "src/minizk/ir_model.h"

namespace awd {
namespace {

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                const std::string& function = "", int instr_id = -1) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& finding) {
    if (finding.rule != rule) {
      return false;
    }
    if (!function.empty() && finding.function != function) {
      return false;
    }
    return instr_id < 0 || finding.instr_id == instr_id;
  });
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [&](const Finding& finding) { return finding.rule == rule; }));
}

// ------------------------------------------------------- shipped models pass

TEST(LintShippedModelsTest, KvsIsClean) {
  kvs::KvsOptions options;
  options.followers = {"kvs2", "kvs3"};
  const LintResult result =
      LintModule(kvs::DescribeIr(options), kvs::DescribeRedirections());
  EXPECT_EQ(result.errors, 0) << FormatFindings(result.findings);
  EXPECT_EQ(result.warnings, 0) << FormatFindings(result.findings);
  EXPECT_GT(result.program.functions.size(), 0u);
  EXPECT_GT(result.plan.points.size(), 0u);
}

TEST(LintShippedModelsTest, MinizkIsClean) {
  minizk::ZkOptions options;
  options.followers = {"zk-f1", "zk-f2"};
  const LintResult result =
      LintModule(minizk::DescribeIr(options), minizk::DescribeRedirections());
  EXPECT_EQ(result.errors, 0) << FormatFindings(result.findings);
  EXPECT_EQ(result.warnings, 0) << FormatFindings(result.findings);
}

TEST(LintShippedModelsTest, MinizkStandaloneIsClean) {
  const LintResult result =
      LintModule(minizk::DescribeIr(minizk::ZkOptions{}), minizk::DescribeRedirections());
  EXPECT_EQ(result.errors, 0) << FormatFindings(result.findings);
}

TEST(LintShippedModelsTest, MinihdfsIsClean) {
  minihdfs::DataNodeOptions options;
  options.downstream = "dn2";
  const LintResult result =
      LintModule(minihdfs::DescribeIr(options), minihdfs::DescribeRedirections());
  EXPECT_EQ(result.errors, 0) << FormatFindings(result.findings);
  EXPECT_EQ(result.warnings, 0) << FormatFindings(result.findings);
}

// ------------------------------------------------------------ well-formedness

TEST(WellFormedTest, UnbalancedLoopBegin) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c").LongRunning().LoopBegin().Compute("x").Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.loop-balance", "f", 1)) << FormatFindings(findings);
}

TEST(WellFormedTest, LoopEndWithoutBegin) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c").LongRunning().Compute("x").LoopEnd().Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.loop-balance", "f", 2)) << FormatFindings(findings);
}

TEST(WellFormedTest, DuplicateInstrIds) {
  Function fn = FunctionBuilder("f", "c").Compute("a").Compute("b").Build();
  fn.instrs[1].id = fn.instrs[0].id;
  Module module("m");
  module.AddFunction(std::move(fn));
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.duplicate-id", "f", 1)) << FormatFindings(findings);
}

TEST(WellFormedTest, NonpositiveInstrId) {
  Function fn = FunctionBuilder("f", "c").Compute("a").Build();
  fn.instrs[0].id = 0;
  Module module("m");
  module.AddFunction(std::move(fn));
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.nonpositive-id", "f", 0)) << FormatFindings(findings);
}

TEST(WellFormedTest, DanglingCallTarget) {
  Module module("m");
  module.AddFunction(
      FunctionBuilder("f", "c").LongRunning().Call("DoesNotExist").Return().Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.dangling-call", "f", 1)) << FormatFindings(findings);
}

TEST(WellFormedTest, DuplicateFunctionDefinition) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c").LongRunning().Compute("a").Build());
  module.AddFunction(FunctionBuilder("f", "c").Compute("b").Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.duplicate-function", "f", 0))
      << FormatFindings(findings);
}

TEST(WellFormedTest, UseBeforeDefIsAnError) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Compute("use x", {"x"}, {})
                         .Compute("def x", {}, {"x"})
                         .Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.use-before-def", "f", 1)) << FormatFindings(findings);
}

TEST(WellFormedTest, LoopCarriedUseIsOnlyANote) {
  // A value defined later inside the same loop flows around the back edge.
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Compute("use acc", {"acc"}, {})
                         .Compute("def acc", {}, {"acc"})
                         .LoopEnd()
                         .Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_FALSE(HasFinding(findings, "ir.use-before-def"));
  EXPECT_TRUE(HasFinding(findings, "ir.loop-carried-use", "f", 2))
      << FormatFindings(findings);
}

TEST(WellFormedTest, UnusedDefIsAWarning) {
  Module module("m");
  module.AddFunction(
      FunctionBuilder("f", "c").LongRunning().Compute("def v", {}, {"v"}).Return().Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.unused-def", "f", 1)) << FormatFindings(findings);
}

TEST(WellFormedTest, AmbientArgsAreNotesNotErrors) {
  // Args never defined anywhere model ambient state (config paths, peer ids).
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Op(OpKind::kIoWrite, "disk.write", {"wal_path"}, {})
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_FALSE(HasFinding(findings, "ir.use-before-def"));
  EXPECT_TRUE(HasFinding(findings, "ir.ambient-arg", "f", 1)) << FormatFindings(findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kError), 0);
}

TEST(WellFormedTest, ModuleWithoutRootsWarns) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c").Compute("x").Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.no-roots")) << FormatFindings(findings);
}

// ------------------------------------------------------------ lock discipline

TEST(LockDisciplineTest, LeakedLockPinpointsAcquire) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Compute("setup")
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckLockDiscipline(module, findings);
  EXPECT_TRUE(HasFinding(findings, "lock.leaked", "f", 2)) << FormatFindings(findings);
}

TEST(LockDisciplineTest, ReleaseWithoutAcquire) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckLockDiscipline(module, findings);
  EXPECT_TRUE(HasFinding(findings, "lock.release-without-acquire", "f", 1))
      << FormatFindings(findings);
}

TEST(LockDisciplineTest, ReacquireWhileHeld) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckLockDiscipline(module, findings);
  EXPECT_TRUE(HasFinding(findings, "lock.reacquire", "f", 2)) << FormatFindings(findings);
  EXPECT_FALSE(HasFinding(findings, "lock.leaked"));
}

TEST(LockDisciplineTest, OppositeOrderAcquisitionIsACycle) {
  Module module("m");
  module.AddFunction(FunctionBuilder("ab", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("ba", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckLockDiscipline(module, findings);
  EXPECT_EQ(CountRule(findings, "lock.order-cycle"), 1) << FormatFindings(findings);
}

TEST(LockDisciplineTest, CrossFunctionOrderThroughCalls) {
  // f holds lock.a and calls g which takes lock.b; h takes them in the
  // opposite order directly — a cycle only visible interprocedurally.
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Call("g")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("g", "c")
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("h", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckLockDiscipline(module, findings);
  EXPECT_TRUE(HasFinding(findings, "lock.order-cycle")) << FormatFindings(findings);
}

TEST(LockDisciplineTest, NestedOrderIsNotACycle) {
  // minizk's real shape: commit -> datatree, never the reverse.
  minizk::ZkOptions options;
  options.followers = {"zk-f1"};
  std::vector<Finding> findings;
  CheckLockDiscipline(minizk::DescribeIr(options), findings);
  EXPECT_FALSE(HasFinding(findings, "lock.order-cycle")) << FormatFindings(findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kError), 0) << FormatFindings(findings);
}

// ----------------------------------------------------------------- isolation

Module DestructiveModule() {
  Module module("m");
  module.AddFunction(FunctionBuilder("Loop", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoWrite, "disk.write", {"buf"}, {})
                         .Op(OpKind::kIoDelete, "disk.delete", {"path"}, {})
                         .Op(OpKind::kNetSend, "net.send.peer", {"peer"}, {})
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .LoopEnd()
                         .Build());
  return module;
}

TEST(IsolationTest, UnredirectedDestructiveOpsAreErrors) {
  const Module module = DestructiveModule();
  const ReducedProgram program = Reducer(module).Reduce();
  std::vector<Finding> findings;
  CheckIsolation(program, RedirectionPlan{}, findings);
  EXPECT_TRUE(HasFinding(findings, "iso.unredirected-write", "Loop", 2))
      << FormatFindings(findings);
  EXPECT_TRUE(HasFinding(findings, "iso.unredirected-delete", "Loop", 3))
      << FormatFindings(findings);
  EXPECT_TRUE(HasFinding(findings, "iso.unreplicated-send", "Loop", 4))
      << FormatFindings(findings);
  EXPECT_TRUE(HasFinding(findings, "iso.unbounded-lock", "Loop", 5))
      << FormatFindings(findings);
}

TEST(IsolationTest, ReadOnlyDeclarationForAWriteIsAnError) {
  const Module module = DestructiveModule();
  const ReducedProgram program = Reducer(module).Reduce();
  RedirectionPlan plan;
  plan.entries = {{"disk.write", RedirectMode::kReadOnly, ""},
                  {"disk.delete", RedirectMode::kScratchRedirect, ""},
                  {"net.send.*", RedirectMode::kReplicate, ""},
                  {"lock.*", RedirectMode::kBoundedTry, ""}};
  std::vector<Finding> findings;
  CheckIsolation(program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "iso.readonly-destructive", "Loop", 2))
      << FormatFindings(findings);
  EXPECT_FALSE(HasFinding(findings, "iso.unredirected-delete"));
  EXPECT_FALSE(HasFinding(findings, "iso.unreplicated-send"));
  EXPECT_FALSE(HasFinding(findings, "iso.unbounded-lock"));
}

TEST(IsolationTest, ScratchAndReplicateSatisfyTheGate) {
  const Module module = DestructiveModule();
  const ReducedProgram program = Reducer(module).Reduce();
  RedirectionPlan plan;
  plan.entries = {{"disk.*", RedirectMode::kScratchRedirect, ""},
                  {"net.send.*", RedirectMode::kReplicate, ""},
                  {"lock.*", RedirectMode::kBoundedTry, ""}};
  std::vector<Finding> findings;
  CheckIsolation(program, plan, findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kError), 0) << FormatFindings(findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kWarning), 0) << FormatFindings(findings);
}

// ----------------------------------------------------------------- hook plan

// A two-function module whose reduction yields ops from both Loop and Step.
Module HookModule() {
  Module module("m");
  module.AddFunction(FunctionBuilder("Loop", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kNetRecv, "net.recv.n1", {}, {"req"})
                         .Call("Step", {"req"})
                         .LoopEnd()
                         .Build());
  module.AddFunction(FunctionBuilder("Step", "c")
                         .Param("req")
                         .Op(OpKind::kIoWrite, "disk.write", {"req"}, {})
                         .Return()
                         .Build());
  return module;
}

TEST(HookPlanTest, InferredPlanIsSound) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  const HookPlan plan = InferContexts(program);
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kError), 0) << FormatFindings(findings);
}

TEST(HookPlanTest, SiteNamingNonexistentInstrIsAnError) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_FALSE(plan.points.empty());
  plan.points[0].before_instr_id = 99;
  plan.points[0].hook_site = HookSiteName(plan.points[0].function, 99);
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.bad-site", plan.points[0].function, 99))
      << FormatFindings(findings);
}

TEST(HookPlanTest, SiteStringMismatchIsAnError) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_FALSE(plan.points.empty());
  plan.points[0].hook_site = "garbage";
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.bad-site")) << FormatFindings(findings);
}

TEST(HookPlanTest, UncapturedContextVariableIsAnError) {
  // "req" enters the loop uninitialized (nothing reduced defines it), so it
  // is a genuine context variable; stripping it from every capture starves
  // the checker.
  Module module("m");
  module.AddFunction(FunctionBuilder("Step", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoWrite, "disk.write", {"req"}, {})
                         .LoopEnd()
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  for (HookPoint& point : plan.points) {
    point.capture.erase(std::remove(point.capture.begin(), point.capture.end(), "req"),
                        point.capture.end());
  }
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.uncaptured-var")) << FormatFindings(findings);
}

TEST(HookPlanTest, IntermediateValuesAreNotContextVariables) {
  // The reduced checker re-executes the read that defines "data", so "data"
  // must not be inferred as context (capturing it would be stale by design).
  Module module("m");
  module.AddFunction(FunctionBuilder("Job", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoRead, "disk.read", {"path"}, {"data"})
                         .Op(OpKind::kIoWrite, "disk.write", {"data"}, {})
                         .LoopEnd()
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  const HookPlan plan = InferContexts(program);
  ASSERT_EQ(plan.contexts.size(), 1u);
  EXPECT_EQ(plan.contexts[0].variables, std::vector<std::string>{"path"});
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_FALSE(HasFinding(findings, "hook.stale-capture")) << FormatFindings(findings);
}

TEST(HookPlanTest, CaptureBeforeStraightLineDefinitionIsStale) {
  Module module("m");
  module.AddFunction(FunctionBuilder("Job", "c")
                         .LongRunning()
                         .Op(OpKind::kIoRead, "disk.read", {}, {"data"})
                         .Op(OpKind::kIoWrite, "disk.write", {"data"}, {})
                         .Return()
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_EQ(plan.points.size(), 1u);
  // Force a capture of the read's product: the hook (before instr 1) would
  // fire before "data" exists, on every single firing.
  plan.points[0].capture.push_back("data");
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  ASSERT_TRUE(HasFinding(findings, "hook.stale-capture", "Job", 1))
      << FormatFindings(findings);
  for (const Finding& finding : findings) {
    if (finding.rule == "hook.stale-capture") {
      EXPECT_EQ(finding.severity, Severity::kError);
    }
  }
}

TEST(HookPlanTest, LoopCarriedCaptureIsANote) {
  Module module("m");
  module.AddFunction(FunctionBuilder("Job", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoRead, "disk.read", {}, {"data"})
                         .Op(OpKind::kIoWrite, "disk.write", {"data"}, {})
                         .LoopEnd()
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_EQ(plan.points.size(), 1u);
  // Definition and hook anchor share the loop: iteration N's capture carries
  // iteration N-1's value — §4.1's model, but the first firing is undefined.
  plan.points[0].capture.push_back("data");
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  ASSERT_TRUE(HasFinding(findings, "hook.stale-capture", "Job", 2))
      << FormatFindings(findings);
  for (const Finding& finding : findings) {
    if (finding.rule == "hook.stale-capture") {
      EXPECT_EQ(finding.severity, Severity::kNote);
    }
  }
}

TEST(HookPlanTest, CaptureAfterFirstConsumingOpIsLate) {
  // Hand-build a plan whose only hook for Step fires after the op consuming
  // req (anchored past it) — dominance in the linear-with-loops order fails.
  Module module("m");
  module.AddFunction(FunctionBuilder("Step", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoWrite, "disk.write", {"req"}, {})
                         .Op(OpKind::kIoFsync, "disk.fsync", {"req"}, {})
                         .LoopEnd()
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  ASSERT_EQ(program.functions.size(), 1u);
  ASSERT_EQ(program.functions[0].ops.size(), 2u);
  HookPlan plan = InferContexts(program);
  ASSERT_EQ(plan.points.size(), 1u);
  plan.points[0].before_instr_id = program.functions[0].ops[1].origin_instr_id;
  plan.points[0].hook_site =
      HookSiteName(plan.points[0].function, plan.points[0].before_instr_id);
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.late-capture", "Step", 2))
      << FormatFindings(findings);
}

TEST(HookPlanTest, SiteArmedForTwoContextsIsClobbered) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_FALSE(plan.points.empty());
  HookPoint clone = plan.points[0];
  clone.context_name = "other_ctx";
  ContextSpec other;
  other.context_name = "other_ctx";
  other.reduced_function = "other_reduced";
  plan.contexts.push_back(other);
  plan.points.push_back(clone);
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.site-clobbered")) << FormatFindings(findings);
}

TEST(HookPlanTest, HookForUnknownContextIsAnError) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_FALSE(plan.points.empty());
  plan.points[0].context_name = "nobody_declares_me";
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.unknown-context")) << FormatFindings(findings);
}

TEST(HookPlanTest, MissingContextSpecIsAnError) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  plan.contexts.clear();
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.missing-context")) << FormatFindings(findings);
}

TEST(HookPlanTest, HookCapturingNothingConsumedIsDead) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_FALSE(plan.points.empty());
  for (HookPoint& point : plan.points) {
    point.capture = {"unconsumed_extra"};
  }
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.dead")) << FormatFindings(findings);
}

// -------------------------------------------------------------------- policy

TEST(LintPolicyTest, DisabledRulesAndSuppressedLocationsDrop) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Compute("dead", {}, {"v"})
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  CheckLockDiscipline(module, findings);
  ASSERT_TRUE(HasFinding(findings, "lock.leaked", "f", 1));
  ASSERT_TRUE(HasFinding(findings, "ir.unused-def", "f", 2));

  LintPolicy policy;
  policy.disabled_rules.insert("ir.unused-def");
  policy.suppressed_locations.insert("f:1");
  const std::vector<Finding> kept = ApplyPolicy(findings, policy);
  EXPECT_FALSE(HasFinding(kept, "ir.unused-def"));
  EXPECT_FALSE(HasFinding(kept, "lock.leaked"));
}

TEST(LintPolicyTest, WarningsAsErrorsPromotes) {
  std::vector<Finding> findings;
  Finding warning;
  warning.severity = Severity::kWarning;
  warning.rule = "ir.unused-def";
  warning.function = "f";
  warning.instr_id = 1;
  findings.push_back(warning);
  LintPolicy policy;
  policy.warnings_as_errors = true;
  const std::vector<Finding> kept = ApplyPolicy(findings, policy);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].severity, Severity::kError);
}

// ----------------------------------------------------------------- pass manager

TEST(VerifierTest, DefaultRegistersBothPassFamilies) {
  const std::vector<std::string> names = Verifier::Default().PassNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "well-formed");
  EXPECT_EQ(names[1], "lock-discipline");
}

TEST(VerifierTest, RunSortsErrorsFirst) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Compute("dead", {}, {"v"})       // warning
                         .Op(OpKind::kLockRelease, "lock.a")  // error
                         .Return()
                         .Build());
  const std::vector<Finding> findings = Verifier::Default().Run(module);
  ASSERT_GE(findings.size(), 2u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
}

TEST(VerifierTest, CustomPassesRun) {
  Verifier verifier;
  int calls = 0;
  verifier.AddPass("probe", [&calls](const Module&, std::vector<Finding>&) { ++calls; });
  verifier.Run(Module("m"));
  EXPECT_EQ(calls, 1);
}

TEST(LintModuleTest, FullGateFlagsASeededBadModule) {
  Module module("bad");
  module.AddFunction(FunctionBuilder("Loop", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kIoWrite, "disk.write", {"buf"}, {})
                         .Call("Nope")
                         .Build());
  const LintResult result = LintModule(module, RedirectionPlan{});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasFinding(result.findings, "ir.loop-balance", "Loop"));
  EXPECT_TRUE(HasFinding(result.findings, "ir.dangling-call", "Loop", 4));
  EXPECT_TRUE(HasFinding(result.findings, "lock.leaked", "Loop", 2));
  EXPECT_TRUE(HasFinding(result.findings, "iso.unredirected-write", "Loop", 3));
}

// -------------------------------------------------- generated-API hygiene

TEST(GeneratedApiTest, FlagsDeprecatedStringAccessors) {
  std::vector<Finding> findings;
  CheckCheckerSourceApi("snapshotLoop_reduced",
                        "auto node = ctx.GetString(\"node\");\n"
                        "auto size = ctx.GetInt(\"bytes\");\n",
                        findings);
  EXPECT_TRUE(HasFinding(findings, "api.deprecated-accessor", "snapshotLoop_reduced"))
      << FormatFindings(findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kError), 2);
}

TEST(GeneratedApiTest, FlagsPositionalArgsGetter) {
  std::vector<Finding> findings;
  CheckCheckerSourceApi("c", "auto node = ctx.args_getter(0);\n", findings);
  EXPECT_TRUE(HasFinding(findings, "api.deprecated-accessor")) << FormatFindings(findings);
}

TEST(GeneratedApiTest, TypedKeyApiIsClean) {
  std::vector<Finding> findings;
  CheckCheckerSourceApi(
      "c",
      "static const auto k_node = wdg::ContextKey<wdg::CtxValue>::Of(\"node\");\n"
      "auto node = ctx.Get(k_node);\n",
      findings);
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(GeneratedApiTest, CurrentCodegenPassesTheRule) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  const HookPlan plan = InferContexts(program);
  std::vector<Finding> findings;
  CheckGeneratedApi(program, plan, findings);
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

}  // namespace
}  // namespace awd
