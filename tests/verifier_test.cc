// wdg-lint coverage: the three shipped IR models pass every pass family
// clean, and each rule fires on a minimal bad module with the rule name and
// pinpointed instruction id asserted.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/autowd/cost.h"
#include "src/autowd/lint.h"
#include "src/ir/dataflow.h"
#include "src/ir/verifier.h"
#include "src/kvs/ir_model.h"
#include "src/minihdfs/ir_model.h"
#include "src/minizk/ir_model.h"

namespace awd {
namespace {

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                const std::string& function = "", int instr_id = -1) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& finding) {
    if (finding.rule != rule) {
      return false;
    }
    if (!function.empty() && finding.function != function) {
      return false;
    }
    return instr_id < 0 || finding.instr_id == instr_id;
  });
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [&](const Finding& finding) { return finding.rule == rule; }));
}

// ------------------------------------------------------- shipped models pass

TEST(LintShippedModelsTest, KvsIsClean) {
  kvs::KvsOptions options;
  options.followers = {"kvs2", "kvs3"};
  const LintResult result =
      LintModule(kvs::DescribeIr(options), kvs::DescribeRedirections());
  EXPECT_EQ(result.errors, 0) << FormatFindings(result.findings);
  EXPECT_EQ(result.warnings, 0) << FormatFindings(result.findings);
  EXPECT_GT(result.program.functions.size(), 0u);
  EXPECT_GT(result.plan.points.size(), 0u);
}

TEST(LintShippedModelsTest, MinizkIsClean) {
  minizk::ZkOptions options;
  options.followers = {"zk-f1", "zk-f2"};
  const LintResult result =
      LintModule(minizk::DescribeIr(options), minizk::DescribeRedirections());
  EXPECT_EQ(result.errors, 0) << FormatFindings(result.findings);
  EXPECT_EQ(result.warnings, 0) << FormatFindings(result.findings);
}

TEST(LintShippedModelsTest, MinizkStandaloneIsClean) {
  const LintResult result =
      LintModule(minizk::DescribeIr(minizk::ZkOptions{}), minizk::DescribeRedirections());
  EXPECT_EQ(result.errors, 0) << FormatFindings(result.findings);
}

TEST(LintShippedModelsTest, MinihdfsIsClean) {
  minihdfs::DataNodeOptions options;
  options.downstream = "dn2";
  const LintResult result =
      LintModule(minihdfs::DescribeIr(options), minihdfs::DescribeRedirections());
  EXPECT_EQ(result.errors, 0) << FormatFindings(result.findings);
  EXPECT_EQ(result.warnings, 0) << FormatFindings(result.findings);
}

// ------------------------------------------------------------ well-formedness

TEST(WellFormedTest, UnbalancedLoopBegin) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c").LongRunning().LoopBegin().Compute("x").Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.loop-balance", "f", 1)) << FormatFindings(findings);
}

TEST(WellFormedTest, LoopEndWithoutBegin) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c").LongRunning().Compute("x").LoopEnd().Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.loop-balance", "f", 2)) << FormatFindings(findings);
}

TEST(WellFormedTest, DuplicateInstrIds) {
  Function fn = FunctionBuilder("f", "c").Compute("a").Compute("b").Build();
  fn.instrs[1].id = fn.instrs[0].id;
  Module module("m");
  module.AddFunction(std::move(fn));
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.duplicate-id", "f", 1)) << FormatFindings(findings);
}

TEST(WellFormedTest, NonpositiveInstrId) {
  Function fn = FunctionBuilder("f", "c").Compute("a").Build();
  fn.instrs[0].id = 0;
  Module module("m");
  module.AddFunction(std::move(fn));
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.nonpositive-id", "f", 0)) << FormatFindings(findings);
}

TEST(WellFormedTest, DanglingCallTarget) {
  Module module("m");
  module.AddFunction(
      FunctionBuilder("f", "c").LongRunning().Call("DoesNotExist").Return().Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.dangling-call", "f", 1)) << FormatFindings(findings);
}

TEST(WellFormedTest, DuplicateFunctionDefinition) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c").LongRunning().Compute("a").Build());
  module.AddFunction(FunctionBuilder("f", "c").Compute("b").Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.duplicate-function", "f", 0))
      << FormatFindings(findings);
}

TEST(WellFormedTest, UseBeforeDefIsAnError) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Compute("use x", {"x"}, {})
                         .Compute("def x", {}, {"x"})
                         .Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.use-before-def", "f", 1)) << FormatFindings(findings);
}

TEST(WellFormedTest, LoopCarriedUseIsOnlyANote) {
  // A value defined later inside the same loop flows around the back edge.
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Compute("use acc", {"acc"}, {})
                         .Compute("def acc", {}, {"acc"})
                         .LoopEnd()
                         .Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_FALSE(HasFinding(findings, "ir.use-before-def"));
  EXPECT_TRUE(HasFinding(findings, "ir.loop-carried-use", "f", 2))
      << FormatFindings(findings);
}

TEST(WellFormedTest, UnusedDefIsAWarning) {
  Module module("m");
  module.AddFunction(
      FunctionBuilder("f", "c").LongRunning().Compute("def v", {}, {"v"}).Return().Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.unused-def", "f", 1)) << FormatFindings(findings);
}

TEST(WellFormedTest, AmbientArgsAreNotesNotErrors) {
  // Args never defined anywhere model ambient state (config paths, peer ids).
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Op(OpKind::kIoWrite, "disk.write", {"wal_path"}, {})
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_FALSE(HasFinding(findings, "ir.use-before-def"));
  EXPECT_TRUE(HasFinding(findings, "ir.ambient-arg", "f", 1)) << FormatFindings(findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kError), 0);
}

TEST(WellFormedTest, ModuleWithoutRootsWarns) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c").Compute("x").Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  EXPECT_TRUE(HasFinding(findings, "ir.no-roots")) << FormatFindings(findings);
}

// ------------------------------------------------------------ lock discipline

TEST(LockDisciplineTest, LeakedLockPinpointsAcquire) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Compute("setup")
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckLockDiscipline(module, findings);
  EXPECT_TRUE(HasFinding(findings, "lock.leaked", "f", 2)) << FormatFindings(findings);
}

TEST(LockDisciplineTest, ReleaseWithoutAcquire) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckLockDiscipline(module, findings);
  EXPECT_TRUE(HasFinding(findings, "lock.release-without-acquire", "f", 1))
      << FormatFindings(findings);
}

TEST(LockDisciplineTest, ReacquireWhileHeld) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckLockDiscipline(module, findings);
  EXPECT_TRUE(HasFinding(findings, "lock.reacquire", "f", 2)) << FormatFindings(findings);
  EXPECT_FALSE(HasFinding(findings, "lock.leaked"));
}

TEST(LockDisciplineTest, OppositeOrderAcquisitionIsACycle) {
  Module module("m");
  module.AddFunction(FunctionBuilder("ab", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("ba", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckLockDiscipline(module, findings);
  EXPECT_EQ(CountRule(findings, "lock.order-cycle"), 1) << FormatFindings(findings);
}

TEST(LockDisciplineTest, CrossFunctionOrderThroughCalls) {
  // f holds lock.a and calls g which takes lock.b; h takes them in the
  // opposite order directly — a cycle only visible interprocedurally.
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Call("g")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("g", "c")
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("h", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckLockDiscipline(module, findings);
  EXPECT_TRUE(HasFinding(findings, "lock.order-cycle")) << FormatFindings(findings);
}

TEST(LockDisciplineTest, NestedOrderIsNotACycle) {
  // minizk's real shape: commit -> datatree, never the reverse.
  minizk::ZkOptions options;
  options.followers = {"zk-f1"};
  std::vector<Finding> findings;
  CheckLockDiscipline(minizk::DescribeIr(options), findings);
  EXPECT_FALSE(HasFinding(findings, "lock.order-cycle")) << FormatFindings(findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kError), 0) << FormatFindings(findings);
}

// ----------------------------------------------------------------- isolation

Module DestructiveModule() {
  Module module("m");
  module.AddFunction(FunctionBuilder("Loop", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoWrite, "disk.write", {"buf"}, {})
                         .Op(OpKind::kIoDelete, "disk.delete", {"path"}, {})
                         .Op(OpKind::kNetSend, "net.send.peer", {"peer"}, {})
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .LoopEnd()
                         .Build());
  return module;
}

TEST(IsolationTest, UnredirectedDestructiveOpsAreErrors) {
  const Module module = DestructiveModule();
  const ReducedProgram program = Reducer(module).Reduce();
  std::vector<Finding> findings;
  CheckIsolation(program, RedirectionPlan{}, findings);
  EXPECT_TRUE(HasFinding(findings, "iso.unredirected-write", "Loop", 2))
      << FormatFindings(findings);
  EXPECT_TRUE(HasFinding(findings, "iso.unredirected-delete", "Loop", 3))
      << FormatFindings(findings);
  EXPECT_TRUE(HasFinding(findings, "iso.unreplicated-send", "Loop", 4))
      << FormatFindings(findings);
  EXPECT_TRUE(HasFinding(findings, "iso.unbounded-lock", "Loop", 5))
      << FormatFindings(findings);
}

TEST(IsolationTest, ReadOnlyDeclarationForAWriteIsAnError) {
  const Module module = DestructiveModule();
  const ReducedProgram program = Reducer(module).Reduce();
  RedirectionPlan plan;
  plan.entries = {{"disk.write", RedirectMode::kReadOnly, ""},
                  {"disk.delete", RedirectMode::kScratchRedirect, ""},
                  {"net.send.*", RedirectMode::kReplicate, ""},
                  {"lock.*", RedirectMode::kBoundedTry, ""}};
  std::vector<Finding> findings;
  CheckIsolation(program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "iso.readonly-destructive", "Loop", 2))
      << FormatFindings(findings);
  EXPECT_FALSE(HasFinding(findings, "iso.unredirected-delete"));
  EXPECT_FALSE(HasFinding(findings, "iso.unreplicated-send"));
  EXPECT_FALSE(HasFinding(findings, "iso.unbounded-lock"));
}

TEST(IsolationTest, ScratchAndReplicateSatisfyTheGate) {
  const Module module = DestructiveModule();
  const ReducedProgram program = Reducer(module).Reduce();
  RedirectionPlan plan;
  plan.entries = {{"disk.*", RedirectMode::kScratchRedirect, ""},
                  {"net.send.*", RedirectMode::kReplicate, ""},
                  {"lock.*", RedirectMode::kBoundedTry, ""}};
  std::vector<Finding> findings;
  CheckIsolation(program, plan, findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kError), 0) << FormatFindings(findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kWarning), 0) << FormatFindings(findings);
}

// ----------------------------------------------------------------- hook plan

// A two-function module whose reduction yields ops from both Loop and Step.
Module HookModule() {
  Module module("m");
  module.AddFunction(FunctionBuilder("Loop", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kNetRecv, "net.recv.n1", {}, {"req"})
                         .Call("Step", {"req"})
                         .LoopEnd()
                         .Build());
  module.AddFunction(FunctionBuilder("Step", "c")
                         .Param("req")
                         .Op(OpKind::kIoWrite, "disk.write", {"req"}, {})
                         .Return()
                         .Build());
  return module;
}

TEST(HookPlanTest, InferredPlanIsSound) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  const HookPlan plan = InferContexts(program);
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kError), 0) << FormatFindings(findings);
}

TEST(HookPlanTest, SiteNamingNonexistentInstrIsAnError) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_FALSE(plan.points.empty());
  plan.points[0].before_instr_id = 99;
  plan.points[0].hook_site = HookSiteName(plan.points[0].function, 99);
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.bad-site", plan.points[0].function, 99))
      << FormatFindings(findings);
}

TEST(HookPlanTest, SiteStringMismatchIsAnError) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_FALSE(plan.points.empty());
  plan.points[0].hook_site = "garbage";
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.bad-site")) << FormatFindings(findings);
}

TEST(HookPlanTest, UncapturedContextVariableIsAnError) {
  // "req" enters the loop uninitialized (nothing reduced defines it), so it
  // is a genuine context variable; stripping it from every capture starves
  // the checker.
  Module module("m");
  module.AddFunction(FunctionBuilder("Step", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoWrite, "disk.write", {"req"}, {})
                         .LoopEnd()
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  for (HookPoint& point : plan.points) {
    point.capture.erase(std::remove(point.capture.begin(), point.capture.end(), "req"),
                        point.capture.end());
  }
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.uncaptured-var")) << FormatFindings(findings);
}

TEST(HookPlanTest, IntermediateValuesAreNotContextVariables) {
  // The reduced checker re-executes the read that defines "data", so "data"
  // must not be inferred as context (capturing it would be stale by design).
  Module module("m");
  module.AddFunction(FunctionBuilder("Job", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoRead, "disk.read", {"path"}, {"data"})
                         .Op(OpKind::kIoWrite, "disk.write", {"data"}, {})
                         .LoopEnd()
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  const HookPlan plan = InferContexts(program);
  ASSERT_EQ(plan.contexts.size(), 1u);
  EXPECT_EQ(plan.contexts[0].variables, std::vector<std::string>{"path"});
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_FALSE(HasFinding(findings, "hook.stale-capture")) << FormatFindings(findings);
}

TEST(HookPlanTest, CaptureBeforeStraightLineDefinitionIsStale) {
  Module module("m");
  module.AddFunction(FunctionBuilder("Job", "c")
                         .LongRunning()
                         .Op(OpKind::kIoRead, "disk.read", {}, {"data"})
                         .Op(OpKind::kIoWrite, "disk.write", {"data"}, {})
                         .Return()
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_EQ(plan.points.size(), 1u);
  // Force a capture of the read's product: the hook (before instr 1) would
  // fire before "data" exists, on every single firing.
  plan.points[0].capture.push_back("data");
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  ASSERT_TRUE(HasFinding(findings, "hook.stale-capture", "Job", 1))
      << FormatFindings(findings);
  for (const Finding& finding : findings) {
    if (finding.rule == "hook.stale-capture") {
      EXPECT_EQ(finding.severity, Severity::kError);
    }
  }
}

TEST(HookPlanTest, LoopCarriedCaptureIsANote) {
  Module module("m");
  module.AddFunction(FunctionBuilder("Job", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoRead, "disk.read", {}, {"data"})
                         .Op(OpKind::kIoWrite, "disk.write", {"data"}, {})
                         .LoopEnd()
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_EQ(plan.points.size(), 1u);
  // Definition and hook anchor share the loop: iteration N's capture carries
  // iteration N-1's value — §4.1's model, but the first firing is undefined.
  plan.points[0].capture.push_back("data");
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  ASSERT_TRUE(HasFinding(findings, "hook.stale-capture", "Job", 2))
      << FormatFindings(findings);
  for (const Finding& finding : findings) {
    if (finding.rule == "hook.stale-capture") {
      EXPECT_EQ(finding.severity, Severity::kNote);
    }
  }
}

TEST(HookPlanTest, CaptureAfterFirstConsumingOpIsLate) {
  // Hand-build a plan whose only hook for Step fires after the op consuming
  // req (anchored past it) — dominance in the linear-with-loops order fails.
  Module module("m");
  module.AddFunction(FunctionBuilder("Step", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoWrite, "disk.write", {"req"}, {})
                         .Op(OpKind::kIoFsync, "disk.fsync", {"req"}, {})
                         .LoopEnd()
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  ASSERT_EQ(program.functions.size(), 1u);
  ASSERT_EQ(program.functions[0].ops.size(), 2u);
  HookPlan plan = InferContexts(program);
  ASSERT_EQ(plan.points.size(), 1u);
  plan.points[0].before_instr_id = program.functions[0].ops[1].origin_instr_id;
  plan.points[0].hook_site =
      HookSiteName(plan.points[0].function, plan.points[0].before_instr_id);
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.late-capture", "Step", 2))
      << FormatFindings(findings);
}

TEST(HookPlanTest, SiteArmedForTwoContextsIsClobbered) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_FALSE(plan.points.empty());
  HookPoint clone = plan.points[0];
  clone.context_name = "other_ctx";
  ContextSpec other;
  other.context_name = "other_ctx";
  other.reduced_function = "other_reduced";
  plan.contexts.push_back(other);
  plan.points.push_back(clone);
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.site-clobbered")) << FormatFindings(findings);
}

TEST(HookPlanTest, HookForUnknownContextIsAnError) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_FALSE(plan.points.empty());
  plan.points[0].context_name = "nobody_declares_me";
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.unknown-context")) << FormatFindings(findings);
}

TEST(HookPlanTest, MissingContextSpecIsAnError) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  plan.contexts.clear();
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.missing-context")) << FormatFindings(findings);
}

TEST(HookPlanTest, HookCapturingNothingConsumedIsDead) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  HookPlan plan = InferContexts(program);
  ASSERT_FALSE(plan.points.empty());
  for (HookPoint& point : plan.points) {
    point.capture = {"unconsumed_extra"};
  }
  std::vector<Finding> findings;
  CheckHookPlan(module, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "hook.dead")) << FormatFindings(findings);
}

// -------------------------------------------------------------------- policy

TEST(LintPolicyTest, DisabledRulesAndSuppressedLocationsDrop) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Compute("dead", {}, {"v"})
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckWellFormed(module, findings);
  CheckLockDiscipline(module, findings);
  ASSERT_TRUE(HasFinding(findings, "lock.leaked", "f", 1));
  ASSERT_TRUE(HasFinding(findings, "ir.unused-def", "f", 2));

  LintPolicy policy;
  policy.disabled_rules.insert("ir.unused-def");
  policy.suppressed_locations.insert("f:1");
  const std::vector<Finding> kept = ApplyPolicy(findings, policy);
  EXPECT_FALSE(HasFinding(kept, "ir.unused-def"));
  EXPECT_FALSE(HasFinding(kept, "lock.leaked"));
}

TEST(LintPolicyTest, WarningsAsErrorsPromotes) {
  std::vector<Finding> findings;
  Finding warning;
  warning.severity = Severity::kWarning;
  warning.rule = "ir.unused-def";
  warning.function = "f";
  warning.instr_id = 1;
  findings.push_back(warning);
  LintPolicy policy;
  policy.warnings_as_errors = true;
  const std::vector<Finding> kept = ApplyPolicy(findings, policy);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].severity, Severity::kError);
}

// ----------------------------------------------------------------- pass manager

TEST(VerifierTest, DefaultRegistersAllPassFamilies) {
  const std::vector<std::string> names = Verifier::Default().PassNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "well-formed");
  EXPECT_EQ(names[1], "lock-discipline");
  EXPECT_EQ(names[2], "interproc-locks");
}

TEST(VerifierTest, RunSortsErrorsFirst) {
  Module module("m");
  module.AddFunction(FunctionBuilder("f", "c")
                         .LongRunning()
                         .Compute("dead", {}, {"v"})       // warning
                         .Op(OpKind::kLockRelease, "lock.a")  // error
                         .Return()
                         .Build());
  const std::vector<Finding> findings = Verifier::Default().Run(module);
  ASSERT_GE(findings.size(), 2u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
}

TEST(VerifierTest, CustomPassesRun) {
  Verifier verifier;
  int calls = 0;
  verifier.AddPass("probe", [&calls](const Module&, std::vector<Finding>&) { ++calls; });
  verifier.Run(Module("m"));
  EXPECT_EQ(calls, 1);
}

TEST(LintModuleTest, FullGateFlagsASeededBadModule) {
  Module module("bad");
  module.AddFunction(FunctionBuilder("Loop", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kIoWrite, "disk.write", {"buf"}, {})
                         .Call("Nope")
                         .Build());
  const LintResult result = LintModule(module, RedirectionPlan{});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasFinding(result.findings, "ir.loop-balance", "Loop"));
  EXPECT_TRUE(HasFinding(result.findings, "ir.dangling-call", "Loop", 4));
  EXPECT_TRUE(HasFinding(result.findings, "lock.leaked", "Loop", 2));
  EXPECT_TRUE(HasFinding(result.findings, "iso.unredirected-write", "Loop", 3));
}

// -------------------------------------------------- generated-API hygiene

TEST(GeneratedApiTest, FlagsDeprecatedStringAccessors) {
  std::vector<Finding> findings;
  CheckCheckerSourceApi("snapshotLoop_reduced",
                        "auto node = ctx.GetString(\"node\");\n"
                        "auto size = ctx.GetInt(\"bytes\");\n",
                        findings);
  EXPECT_TRUE(HasFinding(findings, "api.deprecated-accessor", "snapshotLoop_reduced"))
      << FormatFindings(findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kError), 2);
}

TEST(GeneratedApiTest, FlagsPositionalArgsGetter) {
  std::vector<Finding> findings;
  CheckCheckerSourceApi("c", "auto node = ctx.args_getter(0);\n", findings);
  EXPECT_TRUE(HasFinding(findings, "api.deprecated-accessor")) << FormatFindings(findings);
}

TEST(GeneratedApiTest, FlagsStringKeyedContextSet) {
  // The v1 string-keyed CheckContext::Set shim was deleted from the public
  // API; any generated (or hand-pasted) body still writing through it must
  // fail the gate rather than fail to compile in a user tree.
  std::vector<Finding> findings;
  CheckCheckerSourceApi("c",
                        "ctx.Set(\"file\", std::string(\"/sst/42\"));\n"
                        "ctx_ptr->Set(\"bytes\", int64_t{7});\n",
                        findings);
  EXPECT_TRUE(HasFinding(findings, "api.deprecated-accessor", "c"))
      << FormatFindings(findings);
  EXPECT_EQ(CountSeverity(findings, Severity::kError), 2);
}

TEST(GeneratedApiTest, TypedKeySetIsClean) {
  std::vector<Finding> findings;
  CheckCheckerSourceApi("c",
                        "static const auto k_file = wdg::ContextKey<std::string>::Of(\"file\");\n"
                        "ctx.Set(k_file, \"/sst/42\");\n",
                        findings);
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(GeneratedApiTest, TypedKeyApiIsClean) {
  std::vector<Finding> findings;
  CheckCheckerSourceApi(
      "c",
      "static const auto k_node = wdg::ContextKey<wdg::CtxValue>::Of(\"node\");\n"
      "auto node = ctx.Get(k_node);\n",
      findings);
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(GeneratedApiTest, CurrentCodegenPassesTheRule) {
  const Module module = HookModule();
  const ReducedProgram program = Reducer(module).Reduce();
  const HookPlan plan = InferContexts(program);
  std::vector<Finding> findings;
  CheckGeneratedApi(program, plan, findings);
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

// -------------------------------------------------- interprocedural dataflow

// A→B→C→A call cycle with C also calling leaf D, which performs the only
// write. Summaries must propagate D's effect set around the whole cycle.
Module SccModule() {
  Module module("scc");
  module.AddFunction(FunctionBuilder("A", "c").LongRunning().Call("B").Return().Build());
  module.AddFunction(FunctionBuilder("B", "c").Call("C").Return().Build());
  module.AddFunction(
      FunctionBuilder("C", "c").Call("A").Call("D").Return().Build());
  module.AddFunction(FunctionBuilder("D", "c")
                         .Op(OpKind::kIoWrite, "disk.leaf", {"buf"}, {})
                         .Return()
                         .Build());
  return module;
}

TEST(DataflowTest, SummariesPropagateAroundCallCycles) {
  const Module module = SccModule();  // dataflow borrows the module
  const ModuleDataflow dataflow(module);
  for (const char* name : {"A", "B", "C"}) {
    const FunctionSummary* summary = dataflow.Summary(name);
    ASSERT_NE(summary, nullptr) << name;
    EXPECT_TRUE(summary->recursive) << name;
    ASSERT_EQ(summary->writes.count("disk.leaf"), 1u) << name;
    EXPECT_EQ(summary->writes.at("disk.leaf").function, "D");
  }
  const FunctionSummary* leaf = dataflow.Summary("D");
  ASSERT_NE(leaf, nullptr);
  EXPECT_FALSE(leaf->recursive);
  // Callee-first SCC order: D's singleton SCC fixpoints before the cycle's.
  EXPECT_LT(leaf->scc_index, dataflow.Summary("A")->scc_index);
}

TEST(DataflowTest, ReachableWritesCarryWitnessChains) {
  const Module module = SccModule();  // dataflow borrows the module
  const ModuleDataflow dataflow(module);
  const auto writes = dataflow.ContinuousWrites("A");
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0].site.site, "disk.leaf");
  const std::vector<std::string> expected = {"A", "B", "C", "D"};
  EXPECT_EQ(writes[0].chain, expected);
}

TEST(DataflowTest, LoopNestingMultipliesCost) {
  Module module("cost");
  module.AddFunction(FunctionBuilder("Flat", "c")
                         .Op(OpKind::kIoWrite, "disk.w", {"b"}, {})
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("Looped", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoWrite, "disk.w", {"b"}, {})
                         .LoopEnd()
                         .Return()
                         .Build());
  const ModuleDataflow dataflow(module);
  EXPECT_GT(dataflow.Summary("Looped")->self_cost_ns,
            dataflow.Summary("Flat")->self_cost_ns * 2);
}

// Call chain one deeper than ReducerOptions::max_call_depth, ending in an
// unredirected disk write.
Module DeepEscapeModule() {
  Module module("deep");
  module.AddFunction(FunctionBuilder("Root", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Call("Hop1")
                         .LoopEnd()
                         .Return()
                         .Build());
  for (int depth = 1; depth <= 16; ++depth) {
    module.AddFunction(FunctionBuilder("Hop" + std::to_string(depth), "c")
                           .Call("Hop" + std::to_string(depth + 1))
                           .Return()
                           .Build());
  }
  module.AddFunction(FunctionBuilder("Hop17", "c")
                         .Op(OpKind::kIoWrite, "disk.deep", {"buf"}, {})
                         .Return()
                         .Build());
  return module;
}

// The committed regression fixture for effect.escape: the intraprocedural
// pipeline (reduce + CheckIsolation) provably misses the depth-17 write —
// the reducer drops it, so iso.* has nothing to judge — while the
// depth-unbounded effect proof reports it.
TEST(EffectTest, EscapePastReducerHorizonOnlyCaughtInterprocedurally) {
  const Module module = DeepEscapeModule();
  const ReducedProgram program = Reducer(module).Reduce();
  for (const ReducedFunction& fn : program.functions) {
    for (const ReducedOp& op : fn.ops) {
      EXPECT_NE(op.site, "disk.deep") << "reducer horizon moved; rebuild fixture";
    }
  }
  std::vector<Finding> iso;
  CheckIsolation(program, RedirectionPlan{}, iso);
  EXPECT_FALSE(HasFinding(iso, "iso.unredirected-write"))
      << "intraprocedural pass saw the deep write; fixture no longer proves the gap";

  const ModuleDataflow dataflow(module);
  std::vector<Finding> findings;
  CheckEffects(dataflow, program, RedirectionPlan{}, findings);
  EXPECT_TRUE(HasFinding(findings, "effect.escape", "Hop17", 1))
      << FormatFindings(findings);
}

TEST(EffectTest, RedirectedDeepWriteIsConfined) {
  const Module module = DeepEscapeModule();
  const ReducedProgram program = Reducer(module).Reduce();
  RedirectionPlan plan;
  plan.entries.push_back({"disk.*", RedirectMode::kScratchRedirect, "scratch"});
  const ModuleDataflow dataflow(module);
  std::vector<Finding> findings;
  CheckEffects(dataflow, program, plan, findings);
  EXPECT_FALSE(HasFinding(findings, "effect.escape")) << FormatFindings(findings);
}

TEST(EffectTest, CoveredWriteSetEarnsConfinedNote) {
  Module module("confined");
  module.AddFunction(FunctionBuilder("Loop", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoWrite, "disk.w", {"buf"}, {})
                         .LoopEnd()
                         .Return()
                         .Build());
  RedirectionPlan plan;
  plan.entries.push_back({"disk.w", RedirectMode::kScratchRedirect, "scratch"});
  const ReducedProgram program = Reducer(module).Reduce();
  const ModuleDataflow dataflow(module);
  std::vector<Finding> findings;
  CheckEffects(dataflow, program, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "effect.confined", "Loop")) << FormatFindings(findings);
  EXPECT_FALSE(HasFinding(findings, "effect.escape"));
}

// The committed regression fixture for lock.interproc-order: a lock held
// across a self-call. CheckLockDiscipline provably emits nothing (the cycle
// detector drops self-edges; reacquire only checks the current frame), the
// cross-frame pass errors.
TEST(InterprocLockTest, HeldAcrossRecursionOnlyCaughtCrossFrame) {
  Module module("rec");
  module.AddFunction(FunctionBuilder("RecursiveHold", "c")
                         .Op(OpKind::kLockAcquire, "lock.r")
                         .Call("RecursiveHold")
                         .Op(OpKind::kLockRelease, "lock.r")
                         .Return()
                         .Build());
  std::vector<Finding> intra;
  CheckLockDiscipline(module, intra);
  EXPECT_TRUE(intra.empty())
      << "per-frame pass now sees the cross-frame reacquire: " << FormatFindings(intra);

  std::vector<Finding> findings;
  CheckInterprocLocks(module, findings);
  EXPECT_TRUE(HasFinding(findings, "lock.interproc-order", "RecursiveHold", 2))
      << FormatFindings(findings);
}

TEST(InterprocLockTest, ReleaseBeforeRecursingIsClean) {
  Module module("rec");
  module.AddFunction(FunctionBuilder("Drains", "c")
                         .Op(OpKind::kLockAcquire, "lock.r")
                         .Op(OpKind::kLockRelease, "lock.r")
                         .Call("Drains")
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckInterprocLocks(module, findings);
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(InterprocLockTest, HeldAcrossDeepCalleeReacquire) {
  Module module("deep");
  module.AddFunction(FunctionBuilder("Outer", "c")
                         .Op(OpKind::kLockAcquire, "lock.m")
                         .Call("Middle")
                         .Op(OpKind::kLockRelease, "lock.m")
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("Middle", "c").Call("Inner").Return().Build());
  module.AddFunction(FunctionBuilder("Inner", "c")
                         .Op(OpKind::kLockAcquire, "lock.m")
                         .Op(OpKind::kLockRelease, "lock.m")
                         .Return()
                         .Build());
  std::vector<Finding> findings;
  CheckInterprocLocks(module, findings);
  EXPECT_TRUE(HasFinding(findings, "lock.interproc-order", "Outer", 2))
      << FormatFindings(findings);
}

// Checker-vs-main deadlock: the main program orders a before b; a hand-built
// checker mimics b then a without bounded-try declarations, closing the cycle.
TEST(CheckerLockOrderTest, CheckerClosingMainCycleIsAnError) {
  Module module("order");
  module.AddFunction(FunctionBuilder("Main", "c")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Return()
                         .Build());
  ReducedProgram program;
  ReducedFunction checker;
  checker.name = "Backwards_reduced";
  checker.origin = "Main";
  checker.ops.push_back({OpKind::kLockAcquire, "lock.b", "Main", 2, "c", {}, {}, ""});
  checker.ops.push_back({OpKind::kLockAcquire, "lock.a", "Main", 1, "c", {}, {}, ""});
  program.functions.push_back(std::move(checker));

  const ModuleDataflow dataflow(module);
  std::vector<Finding> findings;
  CheckCheckerLockOrder(dataflow, program, RedirectionPlan{}, findings);
  EXPECT_TRUE(HasFinding(findings, "lock.interproc-order", "Main", 1))
      << FormatFindings(findings);

  // Declaring the closing acquire a bounded try removes the blocking edge.
  RedirectionPlan bounded;
  bounded.entries.push_back({"lock.a", RedirectMode::kBoundedTry, "try"});
  std::vector<Finding> clean;
  CheckCheckerLockOrder(dataflow, program, bounded, clean);
  EXPECT_TRUE(clean.empty()) << FormatFindings(clean);
}

// -------------------------------------------------------- hook-context races

Module RaceModule(bool shared_lock) {
  Module module("race");
  FunctionBuilder root_a("RaceRootA", "c");
  root_a.LongRunning()
      .Op(OpKind::kLockAcquire, "lock.x")
      .Call("SharedCapture")
      .Op(OpKind::kLockRelease, "lock.x")
      .Return();
  module.AddFunction(root_a.Build());
  FunctionBuilder root_b("RaceRootB", "c");
  root_b.LongRunning();
  if (shared_lock) {
    root_b.Op(OpKind::kLockAcquire, "lock.x")
        .Call("SharedCapture")
        .Op(OpKind::kLockRelease, "lock.x");
  } else {
    root_b.Call("SharedCapture");
  }
  root_b.Return();
  module.AddFunction(root_b.Build());
  module.AddFunction(FunctionBuilder("SharedCapture", "c")
                         .Compute("stage", {}, {"v"})
                         .Op(OpKind::kIoRead, "disk.race", {"v"}, {})
                         .Return()
                         .Build());
  return module;
}

TEST(HookRaceTest, DisjointLocksetsFromDifferentRootsWarn) {
  const Module module = RaceModule(/*shared_lock=*/false);
  const ReducedProgram program = Reducer(module).Reduce();
  const HookPlan plan = InferContexts(program);
  const ModuleDataflow dataflow(module);
  std::vector<Finding> findings;
  CheckHookRaces(dataflow, plan, findings);
  EXPECT_TRUE(HasFinding(findings, "race.hook-context", "SharedCapture", 2))
      << FormatFindings(findings);
}

TEST(HookRaceTest, CommonLockSerializesCaptures) {
  const Module module = RaceModule(/*shared_lock=*/true);
  const ReducedProgram program = Reducer(module).Reduce();
  const HookPlan plan = InferContexts(program);
  const ModuleDataflow dataflow(module);
  std::vector<Finding> findings;
  CheckHookRaces(dataflow, plan, findings);
  EXPECT_FALSE(HasFinding(findings, "race.hook-context")) << FormatFindings(findings);
}

// ------------------------------------------------------------- static costs

TEST(CostTest, EstimatesPriceOpsAndSeedPriors) {
  Module module("cost");
  module.AddFunction(FunctionBuilder("Loop", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kNetSend, "net.send", {"msg"}, {})
                         .LoopEnd()
                         .Return()
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  const auto estimates = EstimateCheckerCosts(module, program);
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].checker, "Loop_reduced");
  EXPECT_EQ(estimates[0].ops, 1);
  EXPECT_GT(estimates[0].deadline_bound_ns, estimates[0].run_cost_ns);

  // Prior = clamp(bound × multiplier, floor, ceiling).
  CostPriorOptions options;
  const double raw = estimates[0].deadline_bound_ns * options.multiplier;
  const wdg::DurationNs prior = estimates[0].DeadlinePrior(options);
  EXPECT_GE(prior, options.floor);
  EXPECT_LE(prior, options.ceiling);
  if (raw > options.floor && raw < options.ceiling) {
    EXPECT_EQ(prior, static_cast<wdg::DurationNs>(raw));
  }
  options.enabled = false;
  EXPECT_EQ(estimates[0].DeadlinePrior(options), 0);
}

TEST(CostTest, StaticEstimateNotesAndJson) {
  Module module("cost");
  module.AddFunction(FunctionBuilder("Loop", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoWrite, "disk.w", {"b"}, {})
                         .LoopEnd()
                         .Return()
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  std::vector<Finding> findings;
  CheckStaticCosts(module, program, findings);
  EXPECT_TRUE(HasFinding(findings, "cost.static-estimate", "Loop")) << FormatFindings(findings);

  const std::string json = FormatCostsJson(EstimateCheckerCosts(module, program));
  EXPECT_NE(json.find("\"checker\": \"Loop_reduced\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"deadline_prior_ms\""), std::string::npos) << json;
}

// ------------------------------------------------------------- JSON output

TEST(JsonOutputTest, FindingToJsonGolden) {
  Finding finding;
  finding.severity = Severity::kError;
  finding.rule = "effect.escape";
  finding.function = "Hop17";
  finding.instr_id = 1;
  finding.message = "a \"quoted\" message";
  EXPECT_EQ(FindingToJson(finding),
            "{\"severity\": \"error\", \"rule\": \"effect.escape\", "
            "\"function\": \"Hop17\", \"instr_id\": 1, "
            "\"location\": \"Hop17:1\", "
            "\"message\": \"a \\\"quoted\\\" message\"}");
}

TEST(JsonOutputTest, FormatFindingsJsonGolden) {
  EXPECT_EQ(FormatFindingsJson({}), "[]");
  Finding finding;
  finding.severity = Severity::kWarning;
  finding.rule = "race.hook-context";
  finding.function = "F";
  finding.instr_id = 2;
  finding.message = "line1\nline2";
  EXPECT_EQ(FormatFindingsJson({finding}),
            "[\n  {\"severity\": \"warning\", \"rule\": \"race.hook-context\", "
            "\"function\": \"F\", \"instr_id\": 2, \"location\": \"F:2\", "
            "\"message\": \"line1\\nline2\"}\n]");
}

}  // namespace
}  // namespace awd
