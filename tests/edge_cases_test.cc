// Edge-case coverage across modules: wire-format robustness, fault-gated
// metadata ops, minizk transaction recovery, eval detector toggles, codegen
// corner cases, and driver wait predicates.
#include <gtest/gtest.h>

#include <memory>

#include "src/autowd/autowatchdog.h"
#include "src/autowd/codegen.h"
#include "src/common/strings.h"
#include "src/eval/campaign.h"
#include "src/minizk/client.h"
#include "src/minizk/ir_model.h"
#include "src/minizk/server.h"
#include "src/minizk/zk_types.h"
#include "src/fault/fault_plan.h"
#include "src/watchdog/builtin_checkers.h"

namespace {

// ----------------------------------------------------------- zk wire format

TEST(ZkTypesTest, PathDataRoundtrip) {
  const std::string payload = minizk::EncodePathData("/a/b", "value with spaces");
  const auto decoded = minizk::DecodePathData(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->first, "/a/b");
  EXPECT_EQ(decoded->second, "value with spaces");
}

TEST(ZkTypesTest, EmptyDataAndEmptyPath) {
  const auto empty_data = minizk::DecodePathData(minizk::EncodePathData("/n", ""));
  ASSERT_TRUE(empty_data.ok());
  EXPECT_EQ(empty_data->second, "");
  const auto missing_sep = minizk::DecodePathData("no-separator-here");
  EXPECT_FALSE(missing_sep.ok());
}

// ------------------------------------------------------- minizk txn recovery

TEST(ZkRecoveryTest, TxnLogReplayRestoresTree) {
  wdg::RealClock& clock = wdg::RealClock::Instance();
  wdg::FaultInjector injector(clock);
  wdg::SimDisk disk(clock, injector,
                    wdg::DiskOptions{.base_latency = wdg::Us(5), .per_kb_latency = 0});
  wdg::SimNet net(clock, injector, wdg::NetOptions{.base_latency = wdg::Us(20)});

  minizk::ZkFollower follower(clock, net, "zk-f1");
  follower.Start();
  minizk::ZkOptions options;
  options.node_id = "zk-leader";
  options.followers = {"zk-f1"};
  {
    minizk::ZkNode leader(clock, disk, net, options);
    ASSERT_TRUE(leader.Start().ok());
    minizk::ZkClient client(net, "zc", "zk-leader", wdg::Sec(2));
    ASSERT_TRUE(client.Create("/cfg", "v1").ok());
    ASSERT_TRUE(client.Set("/cfg", "v2").ok());
    ASSERT_TRUE(client.Create("/tmp", "x").ok());
    ASSERT_TRUE(client.Delete("/tmp").ok());
    leader.Stop();  // "crash"
  }
  // Restart over the same disk: the txn log replays.
  minizk::ZkNode leader(clock, disk, net, options);
  ASSERT_TRUE(leader.Start().ok());
  EXPECT_EQ(leader.processor().recovered_txns(), 4);
  minizk::ZkClient client(net, "zc2", "zk-leader", wdg::Sec(2));
  const auto value = client.Get("/cfg");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "v2");
  EXPECT_EQ(client.Get("/tmp").status().code(), wdg::StatusCode::kNotFound);
  leader.Stop();
  follower.Stop();
}

// ------------------------------------------------------------ codegen corners

TEST(CodegenEdgeTest, CheckerWithNoContextVariables) {
  awd::ReducedFunction fn;
  fn.name = "Idle_reduced";
  fn.origin = "Idle";
  fn.component = "comp";
  awd::ReducedOp op;
  op.kind = awd::OpKind::kIoFsync;
  op.site = "disk.fsync";
  op.origin_function = "Idle";
  op.origin_instr_id = 1;
  fn.ops.push_back(op);  // op with no args → no variables to capture
  awd::HookPlan plan;    // and no context spec at all
  const std::string source = awd::EmitCheckerSource(fn, plan);
  EXPECT_NE(source.find("Idle_reduced"), std::string::npos);
  EXPECT_NE(source.find("disk.fsync"), std::string::npos);
}

TEST(CodegenEdgeTest, TraceOfEmptyProgramIsWellFormed) {
  awd::Module module("empty");
  awd::ReducedProgram program;
  program.module_name = "empty";
  awd::HookPlan plan;
  const std::string trace = awd::EmitReductionTrace(module, program, plan);
  EXPECT_NE(trace.find("module empty"), std::string::npos);
}

TEST(AnalyzeEdgeTest, ModuleWithoutLongRunningRootsYieldsNothing) {
  awd::Module module("no-roots");
  module.AddFunction(awd::FunctionBuilder("helper", "c")
                         .Op(awd::OpKind::kIoWrite, "disk.write", {"x"})
                         .Build());
  const awd::GenerationReport report = awd::Analyze(module);
  EXPECT_TRUE(report.program.functions.empty());
  EXPECT_TRUE(report.plan.points.empty());
  EXPECT_TRUE(report.checker_names.empty());
}

TEST(AnalyzeEdgeTest, AnnotationsCanBeDisabledByPolicy) {
  awd::Module module("m");
  module.AddFunction(awd::FunctionBuilder("root", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(awd::OpKind::kCompute, "custom.op", {"x"})
                         .Vulnerable()
                         .LoopEnd()
                         .Build());
  awd::ReducerOptions honor;
  EXPECT_EQ(awd::Analyze(module, honor).program.stats.ops_retained, 1);
  awd::ReducerOptions ignore;
  ignore.policy.honor_annotations = false;
  EXPECT_EQ(awd::Analyze(module, ignore).program.stats.ops_retained, 0);
}

// -------------------------------------------------------- driver wait predicate

TEST(DriverWaitTest, PredicateFiltersFailures) {
  wdg::RealClock& clock = wdg::RealClock::Instance();
  wdg::WatchdogDriver driver(clock);
  wdg::CheckerOptions options;
  options.interval = wdg::Ms(10);
  driver.AddChecker(std::make_unique<wdg::ProbeChecker>(
      "a", "compA", [] { return wdg::IoError("a failed"); }, options));
  ASSERT_TRUE(driver.Start().ok());
  // Wait specifically for a failure that never occurs → times out.
  EXPECT_FALSE(driver.WaitForFailure(wdg::Ms(150), [](const wdg::FailureSignature& sig) {
    return sig.checker_name == "nonexistent";
  }));
  // And for one that does.
  EXPECT_TRUE(driver.WaitForFailure(wdg::Sec(1), [](const wdg::FailureSignature& sig) {
    return sig.checker_name == "a";
  }));
  EXPECT_TRUE(driver.Stop().ok());
}

// ----------------------------------------------------------- eval toggles

TEST(TrialTogglesTest, DisabledDetectorsProduceNoOutcomes) {
  wdg::Scenario control;
  control.name = "toggle-control";
  control.fault_free = true;
  wdg::TrialOptions options;
  options.warmup = wdg::Ms(100);
  options.observe = wdg::Ms(200);
  options.with_mimic = false;
  options.with_heartbeat = false;
  options.with_observer = false;
  const wdg::TrialResult result = wdg::RunTrial(control, options);
  EXPECT_EQ(result.outcomes.count(wdg::kDetMimic), 0u);
  EXPECT_EQ(result.outcomes.count(wdg::kDetHeartbeat), 0u);
  EXPECT_EQ(result.outcomes.count(wdg::kDetObserver), 0u);
  EXPECT_EQ(result.outcomes.count(wdg::kDetWdProbe), 1u);
  EXPECT_EQ(result.outcomes.count(wdg::kDetApiProbe), 1u);
}

// ------------------------------------------------- fault-gated metadata ops

TEST(SimDiskEdgeTest, RenameAndListRespectInjectedFaults) {
  wdg::RealClock& clock = wdg::RealClock::Instance();
  wdg::FaultInjector injector(clock);
  wdg::SimDisk disk(clock, injector, wdg::DiskOptions{.base_latency = 0, .per_kb_latency = 0});
  ASSERT_TRUE(disk.Create("/a").ok());

  wdg::FaultSpec spec;
  spec.id = "meta";
  spec.site_pattern = "disk.rename";
  spec.kind = wdg::FaultKind::kError;
  injector.Inject(spec);
  EXPECT_FALSE(disk.Rename("/a", "/b").ok());
  injector.ClearAll();
  EXPECT_TRUE(disk.Rename("/a", "/b").ok());
  EXPECT_TRUE(disk.Exists("/b"));
}

TEST(SimDiskEdgeTest, ReadPastEofRejected) {
  wdg::RealClock& clock = wdg::RealClock::Instance();
  wdg::FaultInjector injector(clock);
  wdg::SimDisk disk(clock, injector, wdg::DiskOptions{.base_latency = 0, .per_kb_latency = 0});
  ASSERT_TRUE(disk.Create("/f").ok());
  ASSERT_TRUE(disk.Append("/f", "abc").ok());
  EXPECT_FALSE(disk.Read("/f", 10, 1).ok());
  EXPECT_FALSE(disk.Read("/f", -1, 1).ok());
  // Reading exactly to EOF is fine; short reads clamp.
  const auto tail = disk.Read("/f", 1, 100);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, "bc");
}

// ----------------------------------------------------------- name functions

TEST(EnumNamesTest, AllStableNamesNonEmpty) {
  using wdg::FailureType;
  for (const auto type : {FailureType::kLivenessTimeout, FailureType::kSafetyViolation,
                          FailureType::kOperationError, FailureType::kCheckerCrash}) {
    EXPECT_STRNE(wdg::FailureTypeName(type), "?");
  }
  using wdg::FaultKind;
  for (const auto kind : {FaultKind::kDelay, FaultKind::kHang, FaultKind::kError,
                          FaultKind::kCorruption, FaultKind::kSilentDrop,
                          FaultKind::kBusyLoop}) {
    EXPECT_STRNE(wdg::FaultKindName(kind), "?");
  }
  using wdg::CheckerType;
  for (const auto type : {CheckerType::kProbe, CheckerType::kSignal, CheckerType::kMimic}) {
    EXPECT_STRNE(wdg::CheckerTypeName(type), "?");
  }
  using wdg::LocalizationLevel;
  for (const auto level : {LocalizationLevel::kNone, LocalizationLevel::kProcess,
                           LocalizationLevel::kComponent, LocalizationLevel::kFunction,
                           LocalizationLevel::kOperation}) {
    EXPECT_STRNE(wdg::LocalizationLevelName(level), "?");
  }
  using awd::OpKind;
  for (int k = 0; k <= static_cast<int>(OpKind::kReturn); ++k) {
    EXPECT_STRNE(awd::OpKindName(static_cast<OpKind>(k)), "?");
  }
}

TEST(FaultPlanSimClockTest, DeterministicScheduleUnderSimulatedTime) {
  wdg::SimClock clock;
  wdg::FaultInjector injector(clock);
  wdg::FaultPlan plan(injector, clock);
  wdg::FaultSpec spec;
  spec.id = "windowed";
  spec.site_pattern = "op";
  spec.kind = wdg::FaultKind::kError;
  plan.InjectAt(wdg::Ms(100), spec).RemoveAt(wdg::Ms(200), "windowed");
  plan.Start();
  // Advance simulated time past the injection point and wait for the plan
  // thread to act (it polls real time between sim-time checks).
  clock.Advance(wdg::Ms(150));
  for (int i = 0; i < 200 && !injector.IsActive("windowed"); ++i) {
    wdg::RealClock::Instance().SleepFor(wdg::Ms(2));
  }
  EXPECT_TRUE(injector.IsActive("windowed"));
  clock.Advance(wdg::Ms(100));
  for (int i = 0; i < 200 && injector.IsActive("windowed"); ++i) {
    wdg::RealClock::Instance().SleepFor(wdg::Ms(2));
  }
  EXPECT_FALSE(injector.IsActive("windowed"));
  plan.Stop();
  clock.Shutdown();
}

}  // namespace
