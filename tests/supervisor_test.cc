// Supervisor-plane tests: frame codec and torn-frame handling, pipe
// transport semantics (EOF ordering, leak oracle), the wdogd escalation
// ladder (warn → restart → reboot with respawn budget), crash/protocol-error
// paths, and the WatchdogDriver supervised mode end to end — including the
// §3.3 scenario where a wedged executor silently withholds kicks and only
// the out-of-process supervisor notices.
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/fault/fault_injector.h"
#include "src/sim/sim_disk.h"
#include "src/supervisor/protocol.h"
#include "src/supervisor/transport.h"
#include "src/supervisor/wdog_client.h"
#include "src/supervisor/wdogd.h"
#include "src/watchdog/builder.h"
#include "src/watchdog/builtin_checkers.h"
#include "src/watchdog/driver.h"

namespace wdg {
namespace {

// Busy-waits (with real sleeps) until `pred` holds or `timeout` passes.
template <typename Pred>
bool WaitUntil(Clock& clock, DurationNs timeout, Pred pred) {
  const TimeNs deadline = clock.NowNs() + timeout;
  while (clock.NowNs() < deadline) {
    if (pred()) {
      return true;
    }
    clock.SleepFor(Ms(2));
  }
  return pred();
}

// A fast ladder so a full walk fits in test time.
EscalationPolicy FastPolicy() {
  EscalationPolicy policy;
  policy.default_deadline = Ms(40);
  policy.min_deadline = Ms(20);
  policy.warn_misses = 1;
  policy.restart_misses = 2;
  policy.max_respawns = 3;
  policy.restart_backoff = Ms(2);
  return policy;
}

WdogdOptions FastOptions() {
  WdogdOptions options;
  options.policy = FastPolicy();
  options.poll = Ms(1);
  return options;
}

// ------------------------------------------------------------------ codec

TEST(FrameCodecTest, RoundTripsEveryFrameType) {
  Frame subscribe;
  subscribe.type = FrameType::kSubscribe;
  subscribe.name = "kvs-node";
  subscribe.deadline = Ms(75);

  Frame sub_ack;
  sub_ack.type = FrameType::kSubscribeAck;
  sub_ack.client_id = 42;
  sub_ack.deadline = Ms(60);

  Frame kick;
  kick.type = FrameType::kKick;
  kick.seq = 7;

  Frame kick_ack;
  kick_ack.type = FrameType::kKickAck;
  kick_ack.seq = 7;

  Frame warn;
  warn.type = FrameType::kWarn;
  warn.message = "missed 1 deadline";

  Frame unsub;
  unsub.type = FrameType::kUnsubscribe;

  Frame unsub_ack;
  unsub_ack.type = FrameType::kUnsubscribeAck;

  FrameReader reader;
  for (const Frame& frame : {subscribe, sub_ack, kick, kick_ack, warn, unsub, unsub_ack}) {
    reader.Append(EncodeFrame(frame));
  }

  auto next = reader.Next();
  ASSERT_TRUE(next.ok() && next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kSubscribe);
  EXPECT_EQ((*next)->name, "kvs-node");
  EXPECT_EQ((*next)->deadline, Ms(75));

  next = reader.Next();
  ASSERT_TRUE(next.ok() && next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kSubscribeAck);
  EXPECT_EQ((*next)->client_id, 42u);
  EXPECT_EQ((*next)->deadline, Ms(60));

  next = reader.Next();
  ASSERT_TRUE(next.ok() && next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kKick);
  EXPECT_EQ((*next)->seq, 7u);

  next = reader.Next();
  ASSERT_TRUE(next.ok() && next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kKickAck);

  next = reader.Next();
  ASSERT_TRUE(next.ok() && next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kWarn);
  EXPECT_EQ((*next)->message, "missed 1 deadline");

  next = reader.Next();
  ASSERT_TRUE(next.ok() && next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kUnsubscribe);

  next = reader.Next();
  ASSERT_TRUE(next.ok() && next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kUnsubscribeAck);

  next = reader.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(FrameCodecTest, ByteByByteDeliveryYieldsNothingUntilComplete) {
  Frame frame;
  frame.type = FrameType::kSubscribe;
  frame.name = "torn";
  frame.deadline = Ms(30);
  const std::string wire = EncodeFrame(frame);

  FrameReader reader;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    reader.Append(std::string_view(&wire[i], 1));
    auto next = reader.Next();
    ASSERT_TRUE(next.ok()) << "byte " << i << ": " << next.status().ToString();
    EXPECT_FALSE(next->has_value()) << "frame surfaced " << (wire.size() - i - 1)
                                    << " bytes early";
  }
  reader.Append(std::string_view(&wire[wire.size() - 1], 1));
  auto next = reader.Next();
  ASSERT_TRUE(next.ok() && next->has_value());
  EXPECT_EQ((*next)->name, "torn");
}

TEST(FrameCodecTest, OversizedLengthPoisonsTheStream) {
  FrameReader reader;
  // Length prefix far beyond kMaxPayload.
  reader.Append(std::string("\xff\xff\xff\x7f", 4));
  reader.Append(std::string("\x01", 1));
  auto next = reader.Next();
  EXPECT_FALSE(next.ok());
  // Poisoned: even valid bytes afterwards never parse.
  reader.Append(EncodeFrame(Frame{}));
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameCodecTest, UnknownFrameTypeIsMalformed) {
  // [len=1][type=0x63] — type 99 does not exist.
  FrameReader reader;
  reader.Append(std::string("\x01\x00\x00\x00\x63", 5));
  EXPECT_FALSE(reader.Next().ok());
}

TEST(ResetRecordTest, EncodeDecodeRoundTripsEscapedText) {
  ResetRecord record;
  record.at = 123456789;
  record.client = "kvs\tleader";  // embedded tab must survive the tab-separated line
  record.cause = ResetCause::kMissedKickRestart;
  record.silence = Ms(80);
  record.respawns = 2;
  record.detail = "line1\nline2";

  auto decoded = ResetRecord::Decode(ResetRecord::Encode(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->at, record.at);
  EXPECT_EQ(decoded->client, record.client);
  EXPECT_EQ(decoded->cause, record.cause);
  EXPECT_EQ(decoded->silence, record.silence);
  EXPECT_EQ(decoded->respawns, record.respawns);
  EXPECT_EQ(decoded->detail, record.detail);

  EXPECT_FALSE(ResetRecord::Decode("not a record").ok());
}

// -------------------------------------------------------------- transport

TEST(PipeTest, DeliversBufferedBytesBeforeEof) {
  RealClock& clock = RealClock::Instance();
  PipePair pair = CreatePipePair(clock);
  ASSERT_TRUE(pair.first->Write("last words").ok());
  pair.first->Close();

  // The dying writer's bytes drain first; only then EOF.
  auto read = pair.second->Read(64, Ms(50));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "last words");
  auto eof = pair.second->Read(64, Ms(50));
  EXPECT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kAborted);

  // EPIPE on writes into a closed peer.
  EXPECT_EQ(pair.second->Write("anyone?").code(), StatusCode::kAborted);
  pair.second->Close();
}

TEST(PipeTest, CloseIsIdempotentForTheLeakOracle) {
  RealClock& clock = RealClock::Instance();
  const int64_t baseline = PipeEndpoint::open_count();
  {
    PipePair pair = CreatePipePair(clock);
    EXPECT_EQ(PipeEndpoint::open_count(), baseline + 2);
    pair.first->Close();
    pair.first->Close();  // double close must not double-decrement
    EXPECT_EQ(PipeEndpoint::open_count(), baseline + 1);
  }
  EXPECT_EQ(PipeEndpoint::open_count(), baseline);
}

// ------------------------------------------------------------------ wdogd

TEST(WdogdTest, LifecycleStatuses) {
  RealClock& clock = RealClock::Instance();
  Wdogd wdogd(clock, FastOptions());
  EXPECT_EQ(wdogd.Stop().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(wdogd.Start().ok());
  EXPECT_EQ(wdogd.Start().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(wdogd.Stop().ok());
  EXPECT_EQ(wdogd.Start().code(), StatusCode::kFailedPrecondition);  // one-shot
}

TEST(WdogdTest, HealthyClientKicksAndLeavesCleanly) {
  RealClock& clock = RealClock::Instance();
  const int64_t baseline = PipeEndpoint::open_count();
  Wdogd wdogd(clock, FastOptions());
  ASSERT_TRUE(wdogd.Start().ok());
  {
    auto pipe = wdogd.Connect(SimProcess{});
    ASSERT_TRUE(pipe.ok());
    WdogClient client(clock, std::move(*pipe));
    ASSERT_TRUE(client.Subscribe("healthy", Ms(60), Ms(500)).ok());
    EXPECT_TRUE(client.subscribed());
    EXPECT_EQ(client.granted_deadline(), Ms(60));

    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(client.Kick().ok());
      clock.SleepFor(Ms(10));
    }
    EXPECT_TRUE(WaitUntil(clock, Ms(300), [&] { return wdogd.kick_count() >= 8; }));
    EXPECT_EQ(wdogd.warn_count(), 0);
    EXPECT_EQ(wdogd.restart_count(), 0);

    ASSERT_TRUE(client.Unsubscribe(Ms(500)).ok());
    client.Close();
    // A clean departure is not a crash.
    EXPECT_TRUE(WaitUntil(clock, Ms(300), [&] { return wdogd.Clients().empty(); }));
    EXPECT_EQ(wdogd.crash_count(), 0);
  }
  ASSERT_TRUE(wdogd.Stop().ok());
  EXPECT_EQ(PipeEndpoint::open_count(), baseline);
}

TEST(WdogdTest, MissedKicksWalkWarnThenRestart) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  SimDisk journal(clock, injector);
  std::atomic<int> restarts{0};
  std::atomic<bool> warned{false};

  WdogdOptions options = FastOptions();
  options.journal_disk = &journal;
  Wdogd wdogd(clock, options);
  ASSERT_TRUE(wdogd.Start().ok());

  SimProcess process;
  process.on_warn = [&] { warned.store(true); };
  process.restart = [&] {
    restarts.fetch_add(1);
    return Status::Ok();
  };
  auto pipe = wdogd.Connect(process);
  ASSERT_TRUE(pipe.ok());
  WdogClient client(clock, std::move(*pipe));
  ASSERT_TRUE(client.Subscribe("silent", Ms(40), Ms(500)).ok());
  // ...and then say nothing. Deadline 40ms: warn at ~40ms, restart at ~80ms.
  ASSERT_TRUE(WaitUntil(clock, Sec(2), [&] { return restarts.load() > 0; }));
  EXPECT_TRUE(warned.load());
  EXPECT_GE(client.warns_received(), 1);
  EXPECT_EQ(wdogd.warn_count(), 1);
  EXPECT_EQ(wdogd.restart_count(), 1);

  // The journal has the full story, in ladder order.
  auto journal_records = wdogd.ReadJournal();
  ASSERT_TRUE(journal_records.ok());
  ASSERT_GE(journal_records->size(), 2u);
  EXPECT_EQ((*journal_records)[0].cause, ResetCause::kWarn);
  EXPECT_EQ((*journal_records)[1].cause, ResetCause::kMissedKickRestart);
  EXPECT_GE((*journal_records)[1].silence, Ms(40));
  EXPECT_EQ((*journal_records)[1].respawns, 1);
  ASSERT_TRUE(wdogd.Stop().ok());
}

TEST(WdogdTest, KickDuringBackoffForgivesPendingRestart) {
  RealClock& clock = RealClock::Instance();
  std::atomic<int> restarts{0};
  WdogdOptions options = FastOptions();
  options.policy.restart_backoff = Ms(250);  // a wide forgiveness window
  Wdogd wdogd(clock, options);
  ASSERT_TRUE(wdogd.Start().ok());

  SimProcess process;
  process.restart = [&] {
    restarts.fetch_add(1);
    return Status::Ok();
  };
  auto pipe = wdogd.Connect(process);
  ASSERT_TRUE(pipe.ok());
  WdogClient client(clock, std::move(*pipe));
  ASSERT_TRUE(client.Subscribe("late-riser", Ms(40), Ms(500)).ok());

  // Sleep past the restart rung (2 × 40ms) but inside the backoff, then
  // come back to life.
  ASSERT_TRUE(WaitUntil(clock, Sec(1), [&] {
    for (const auto& info : wdogd.Clients()) {
      if (info.restart_pending) {
        return true;
      }
    }
    return false;
  }));
  ASSERT_TRUE(client.Kick().ok());
  clock.SleepFor(Ms(300));  // backoff expires; the kick must have forgiven it
  EXPECT_EQ(restarts.load(), 0);
  ASSERT_TRUE(client.Unsubscribe(Ms(500)).ok());
  ASSERT_TRUE(wdogd.Stop().ok());
}

TEST(WdogdTest, CrashWithoutUnsubscribeTriggersRestart) {
  RealClock& clock = RealClock::Instance();
  std::atomic<int> restarts{0};
  Wdogd wdogd(clock, FastOptions());
  ASSERT_TRUE(wdogd.Start().ok());

  SimProcess process;
  process.restart = [&] {
    restarts.fetch_add(1);
    return Status::Ok();
  };
  auto pipe = wdogd.Connect(process);
  ASSERT_TRUE(pipe.ok());
  {
    WdogClient client(clock, std::move(*pipe));
    ASSERT_TRUE(client.Subscribe("doomed", Ms(40), Ms(500)).ok());
    ASSERT_TRUE(client.Kick().ok());
    // Destructor closes the pipe with no unsubscribe: a crash.
  }
  ASSERT_TRUE(WaitUntil(clock, Sec(1), [&] { return restarts.load() > 0; }));
  EXPECT_EQ(wdogd.crash_count(), 1);
  ASSERT_TRUE(wdogd.Stop().ok());
}

TEST(WdogdTest, ClientDeathMidKickLeaksNothing) {
  RealClock& clock = RealClock::Instance();
  const int64_t baseline = PipeEndpoint::open_count();
  std::atomic<int> restarts{0};
  {
    Wdogd wdogd(clock, FastOptions());
    ASSERT_TRUE(wdogd.Start().ok());
    SimProcess process;
    process.restart = [&] {
      restarts.fetch_add(1);
      return Status::Ok();
    };
    auto pipe = wdogd.Connect(process);
    ASSERT_TRUE(pipe.ok());
    {
      WdogClient client(clock, std::move(*pipe));
      ASSERT_TRUE(client.Subscribe("torn-kick", Ms(40), Ms(500)).ok());
    }
    // The supervisor already reaped the subscriber; now a *new* client dies
    // mid-frame: half a kick on the wire, then the pipe closes.
    auto second = wdogd.Connect(SimProcess{});
    ASSERT_TRUE(second.ok());
    Frame kick;
    kick.type = FrameType::kKick;
    kick.seq = 9;
    const std::string wire = EncodeFrame(kick);
    ASSERT_TRUE((*second)->Write(wire.substr(0, wire.size() / 2)).ok());
    (*second)->Close();
    // A torn final frame from a dead never-subscribed client is just a dead
    // conn; the supervisor must reap it without leaking its pipe ends.
    ASSERT_TRUE(WaitUntil(clock, Sec(1), [&] { return wdogd.Clients().empty(); }));
    ASSERT_TRUE(wdogd.Stop().ok());
  }
  EXPECT_EQ(PipeEndpoint::open_count(), baseline);
}

TEST(WdogdTest, GarbageBytesAreAProtocolError) {
  RealClock& clock = RealClock::Instance();
  std::atomic<int> restarts{0};
  Wdogd wdogd(clock, FastOptions());
  ASSERT_TRUE(wdogd.Start().ok());
  SimProcess process;
  process.restart = [&] {
    restarts.fetch_add(1);
    return Status::Ok();
  };
  auto pipe = wdogd.Connect(process);
  ASSERT_TRUE(pipe.ok());
  WdogClient client(clock, std::move(*pipe));
  ASSERT_TRUE(client.Subscribe("babbler", Ms(40), Ms(500)).ok());
  // Raw garbage after a clean subscribe: oversized length prefix.
  // (The client object still owns the pipe; write through a fresh frame.)
  // We can't reach the pipe through WdogClient, so craft a second client
  // that never subscribes and speaks garbage directly.
  auto babbler = wdogd.Connect(process);
  ASSERT_TRUE(babbler.ok());
  ASSERT_TRUE((*babbler)->Write(std::string("\xff\xff\xff\x7f""junk", 8)).ok());
  ASSERT_TRUE(WaitUntil(clock, Sec(1), [&] { return wdogd.protocol_error_count() > 0; }));
  ASSERT_TRUE(WaitUntil(clock, Sec(1), [&] { return restarts.load() > 0; }));
  (*babbler)->Close();
  ASSERT_TRUE(client.Unsubscribe(Ms(500)).ok());
  ASSERT_TRUE(wdogd.Stop().ok());
}

TEST(WdogdTest, RespawnBudgetExhaustionReboots) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  SimDisk journal(clock, injector);
  std::atomic<int> restarts{0};
  std::atomic<int> reboots{0};

  WdogdOptions options = FastOptions();
  options.policy.max_respawns = 1;
  options.journal_disk = &journal;
  Wdogd wdogd(clock, options);
  ASSERT_TRUE(wdogd.Start().ok());

  SimProcess process;
  process.restart = [&] {
    restarts.fetch_add(1);
    return Status::Ok();
  };
  process.reboot = [&] { reboots.fetch_add(1); };

  // Incarnation 1: subscribes as "flaky", goes silent, gets restarted.
  auto pipe1 = wdogd.Connect(process);
  ASSERT_TRUE(pipe1.ok());
  WdogClient client1(clock, std::move(*pipe1));
  ASSERT_TRUE(client1.Subscribe("flaky", Ms(40), Ms(500)).ok());
  ASSERT_TRUE(WaitUntil(clock, Sec(2), [&] { return restarts.load() == 1; }));

  // Incarnation 2: same name, silent again — budget (1) is spent, so the
  // ladder must reach for the big hammer instead of another restart.
  auto pipe2 = wdogd.Connect(process);
  ASSERT_TRUE(pipe2.ok());
  WdogClient client2(clock, std::move(*pipe2));
  ASSERT_TRUE(client2.Subscribe("flaky", Ms(40), Ms(500)).ok());
  ASSERT_TRUE(WaitUntil(clock, Sec(2), [&] { return reboots.load() == 1; }));
  EXPECT_EQ(restarts.load(), 1);
  EXPECT_EQ(wdogd.reboot_count(), 1);

  auto journal_records = wdogd.ReadJournal();
  ASSERT_TRUE(journal_records.ok());
  bool saw_reboot = false;
  for (const ResetRecord& record : *journal_records) {
    saw_reboot = saw_reboot || record.cause == ResetCause::kRespawnExhaustedReboot;
  }
  EXPECT_TRUE(saw_reboot);

  // A reboot wipes the slate: the name's respawn budget is fresh again.
  auto pipe3 = wdogd.Connect(process);
  ASSERT_TRUE(pipe3.ok());
  WdogClient client3(clock, std::move(*pipe3));
  ASSERT_TRUE(client3.Subscribe("flaky", Ms(40), Ms(500)).ok());
  ASSERT_TRUE(WaitUntil(clock, Sec(2), [&] { return restarts.load() == 2; }));
  EXPECT_EQ(reboots.load(), 1);
  ASSERT_TRUE(wdogd.Stop().ok());
}

TEST(WdogdTest, VoluntaryDisconnectBeatsPendingEscalation) {
  RealClock& clock = RealClock::Instance();
  std::atomic<int> restarts{0};
  WdogdOptions options = FastOptions();
  options.policy.restart_backoff = Ms(300);  // wide window for the race
  Wdogd wdogd(clock, options);
  ASSERT_TRUE(wdogd.Start().ok());

  SimProcess process;
  process.restart = [&] {
    restarts.fetch_add(1);
    return Status::Ok();
  };
  auto pipe = wdogd.Connect(process);
  ASSERT_TRUE(pipe.ok());
  WdogClient client(clock, std::move(*pipe));
  ASSERT_TRUE(client.Subscribe("leaver", Ms(40), Ms(500)).ok());

  // Go silent until the restart is pending (but still in backoff), then
  // unsubscribe: the voluntary departure must win.
  ASSERT_TRUE(WaitUntil(clock, Sec(1), [&] {
    for (const auto& info : wdogd.Clients()) {
      if (info.restart_pending) {
        return true;
      }
    }
    return false;
  }));
  EXPECT_TRUE(client.Unsubscribe(Ms(500)).ok());
  clock.SleepFor(Ms(400));  // backoff would have fired by now
  EXPECT_EQ(restarts.load(), 0);
  EXPECT_EQ(wdogd.restart_count(), 0);
  ASSERT_TRUE(wdogd.Stop().ok());
}

// ------------------------------------------------- driver supervised mode

TEST(SupervisedDriverTest, HealthyDriverKicksAndUnsubscribesOnStop) {
  RealClock& clock = RealClock::Instance();
  Wdogd wdogd(clock, FastOptions());
  ASSERT_TRUE(wdogd.Start().ok());

  auto pipe = wdogd.Connect(SimProcess{});
  ASSERT_TRUE(pipe.ok());
  WdogClient client(clock, std::move(*pipe));

  WatchdogDriver::Options driver_options;
  driver_options.shards = 2;  // liveness proof must span every shard
  WatchdogDriver driver(clock, driver_options);
  DriverSupervision supervision;
  supervision.client = &client;
  supervision.name = "healthy-driver";
  supervision.kick_interval = Ms(10);
  supervision.kick_deadline = Ms(60);
  ASSERT_TRUE(driver.SetSupervised(supervision).ok());

  CheckerOptions fast;
  fast.interval = Ms(5);
  fast.timeout = Ms(100);
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "ok-probe", "test", [] { return Status::Ok(); }, fast));
  ASSERT_TRUE(driver.Start().ok());
  EXPECT_TRUE(client.subscribed());

  EXPECT_TRUE(WaitUntil(clock, Sec(1), [&] {
    return driver.DriverMetrics().supervisor_kicks > 3;
  }));
  EXPECT_EQ(wdogd.warn_count(), 0);
  EXPECT_EQ(wdogd.restart_count(), 0);

  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  EXPECT_TRUE(metrics.supervised);
  EXPECT_GT(metrics.supervisor_kicks, 3);

  ASSERT_TRUE(driver.Stop().ok());
  // Stop() unsubscribed: the supervisor saw a clean departure, not a crash.
  EXPECT_TRUE(WaitUntil(clock, Ms(500), [&] { return wdogd.Clients().empty(); }));
  EXPECT_EQ(wdogd.crash_count(), 0);
  EXPECT_EQ(wdogd.restart_count(), 0);
  ASSERT_TRUE(wdogd.Stop().ok());
}

TEST(SupervisedDriverTest, WedgedExecutorWithholdsKicksUntilEscalation) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  std::atomic<int> restarts{0};

  WdogdOptions options = FastOptions();
  Wdogd wdogd(clock, options);
  ASSERT_TRUE(wdogd.Start().ok());

  SimProcess process;
  process.restart = [&] {
    restarts.fetch_add(1);
    return Status::Ok();
  };
  auto pipe = wdogd.Connect(process);
  ASSERT_TRUE(pipe.ok());
  WdogClient client(clock, std::move(*pipe));

  WatchdogDriver::Options driver_options;
  driver_options.shards = 2;  // a wedge on either shard must silence the kicks
  driver_options.release_on_stop = [&injector] { injector.ClearAll(); };
  WatchdogDriver driver(clock, driver_options);
  DriverSupervision supervision;
  supervision.client = &client;
  supervision.name = "wedged-driver";
  supervision.kick_interval = Ms(10);
  supervision.kick_deadline = Ms(60);

  // The probe does "real work" through a fault site — the §3.3 silent
  // failure: once it hangs, the driver must not keep vouching for the
  // process it can no longer prove alive.
  Status registered = CheckerBuilder("gated-probe")
                          .Component("test")
                          .Interval(Ms(5))
                          .Deadline(Sec(5))
                          .Probe([&injector] { return injector.Act("test.probe.io"); })
                          .Supervised(supervision)
                          .RegisterWith(driver);
  ASSERT_TRUE(registered.ok()) << registered.ToString();
  ASSERT_TRUE(driver.Start().ok());

  // Healthy first: kicks flow.
  ASSERT_TRUE(WaitUntil(clock, Sec(1), [&] {
    return driver.DriverMetrics().supervisor_kicks > 2;
  }));

  // Wedge the probe. Kicks must stop (withheld, not just failing) and the
  // supervisor must walk the ladder to a restart.
  FaultSpec hang;
  hang.id = "wedge";
  hang.site_pattern = "test.probe.io";
  hang.kind = FaultKind::kHang;
  injector.Inject(hang);

  ASSERT_TRUE(WaitUntil(clock, Sec(3), [&] { return restarts.load() > 0; }));
  EXPECT_GT(driver.DriverMetrics().supervisor_kicks_withheld, 0);
  EXPECT_GE(wdogd.warn_count(), 1);
  EXPECT_GE(wdogd.restart_count(), 1);

  injector.ClearAll();
  ASSERT_TRUE(driver.Stop().ok());
  ASSERT_TRUE(wdogd.Stop().ok());
}

TEST(SupervisedDriverTest, HandshakeFailureFailsStart) {
  RealClock& clock = RealClock::Instance();
  // A pipe whose supervisor end is already gone: subscribe can only fail.
  PipePair pair = CreatePipePair(clock);
  pair.first->Close();
  WdogClient client(clock, std::move(pair.second));

  WatchdogDriver driver(clock);
  DriverSupervision supervision;
  supervision.client = &client;
  supervision.handshake_timeout = Ms(100);
  ASSERT_TRUE(driver.SetSupervised(supervision).ok());
  CheckerOptions fast;
  fast.interval = Ms(5);
  fast.timeout = Ms(100);
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "p", "test", [] { return Status::Ok(); }, fast));

  const Status started = driver.Start();
  EXPECT_FALSE(started.ok());
  EXPECT_FALSE(driver.running());
  // A failed supervised start is not "stopped": the caller may fix the
  // supervisor connection and start again.
  ASSERT_TRUE(driver.SetSupervised(DriverSupervision{}).ok());
  EXPECT_TRUE(driver.Start().ok());
  EXPECT_TRUE(driver.Stop().ok());
}

TEST(SupervisedDriverTest, SetSupervisedRejectsBadArguments) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver driver(clock);
  EXPECT_EQ(driver.SetSupervised(DriverSupervision{}).code(), StatusCode::kOk);

  CheckerOptions fast;
  fast.interval = Ms(5);
  fast.timeout = Ms(100);
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "p", "test", [] { return Status::Ok(); }, fast));
  ASSERT_TRUE(driver.Start().ok());
  EXPECT_EQ(driver.SetSupervised(DriverSupervision{}).code(),
            StatusCode::kFailedPrecondition);  // not while running
  EXPECT_TRUE(driver.Stop().ok());
}

}  // namespace
}  // namespace wdg
