// Tests for mini-HDFS: block store integrity, DataNode/NameNode behavior,
// and the §3.3 disk-checker story — the weak permissions-only check vs the
// generated mimic checker that does real I/O.
#include <gtest/gtest.h>

#include <memory>

#include "src/autowd/autowatchdog.h"
#include "src/common/strings.h"
#include "src/minihdfs/ir_model.h"

namespace minihdfs {
namespace {

class HdfsFixture : public ::testing::Test {
 protected:
  HdfsFixture()
      : injector_(clock_),
        disk_(clock_, injector_, wdg::DiskOptions{.base_latency = wdg::Us(5),
                                                  .per_kb_latency = 0}),
        net_(clock_, injector_, wdg::NetOptions{.base_latency = wdg::Us(20)}) {}

  ~HdfsFixture() override {
    injector_.ClearAll();
    if (driver_) {
      driver_->Stop();
    }
    if (datanode_) {
      datanode_->Stop();
    }
    if (namenode_) {
      namenode_->Stop();
    }
  }

  void StartCluster(bool with_watchdog) {
    namenode_ = std::make_unique<NameNode>(clock_, net_);
    namenode_->Start();
    DataNodeOptions options;
    options.heartbeat_interval = wdg::Ms(15);
    options.scan_interval = wdg::Ms(15);
    datanode_ = std::make_unique<DataNode>(clock_, disk_, net_, options);
    ASSERT_TRUE(datanode_->Start().ok());

    if (with_watchdog) {
      RegisterOpExecutors(registry_, *datanode_);
      wdg::WatchdogDriver::Options driver_options;
      driver_options.release_on_stop = [this] { injector_.ClearAll(); };
      driver_ = std::make_unique<wdg::WatchdogDriver>(clock_, driver_options);
      awd::GenerationOptions gen;
      gen.checker.interval = wdg::Ms(20);
      gen.checker.timeout = wdg::Ms(250);
      report_ = awd::Generate(DescribeIr(datanode_->options()), datanode_->hooks(),
                              registry_, *driver_, gen);
      driver_->Start();
    }
  }

  wdg::Status WriteBlockViaNet(int64_t id, const std::string& data) {
    wdg::Endpoint* client = net_.CreateEndpoint("hdfs-client");
    const auto reply = client->Call(
        "dn1", kMsgWriteBlock,
        wdg::StrFormat("%lld", static_cast<long long>(id)) + '\x1f' + data, wdg::Ms(500));
    if (!reply.ok()) {
      return reply.status();
    }
    return *reply == "ok" ? wdg::Status::Ok() : wdg::InternalError(*reply);
  }

  wdg::RealClock& clock_ = wdg::RealClock::Instance();
  wdg::FaultInjector injector_;
  wdg::SimDisk disk_;
  wdg::SimNet net_;
  std::unique_ptr<NameNode> namenode_;
  std::unique_ptr<DataNode> datanode_;
  awd::OpExecutorRegistry registry_;
  std::unique_ptr<wdg::WatchdogDriver> driver_;
  awd::GenerationReport report_;
};

TEST_F(HdfsFixture, BlockStoreRoundtripAndIntegrity) {
  BlockStore store(disk_, "/hdfs/dn1");
  ASSERT_TRUE(store.WriteBlock(7, "block seven contents").ok());
  const auto data = store.ReadBlock(7);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "block seven contents");
  EXPECT_TRUE(store.VerifyBlock(7).ok());
  EXPECT_TRUE(store.HasBlock(7));
  ASSERT_EQ(store.ListBlocks().size(), 1u);
  EXPECT_EQ(store.ListBlocks()[0], 7);

  disk_.MarkBadRange(store.BlockPath(7), 2, 4);
  EXPECT_EQ(store.VerifyBlock(7).code(), wdg::StatusCode::kCorruption);
  disk_.ClearBadRanges();
  ASSERT_TRUE(store.DeleteBlock(7).ok());
  EXPECT_FALSE(store.HasBlock(7));
}

TEST_F(HdfsFixture, BlockOverwriteUpdatesChecksum) {
  BlockStore store(disk_, "/hdfs/dn1");
  ASSERT_TRUE(store.WriteBlock(1, "version-1").ok());
  ASSERT_TRUE(store.WriteBlock(1, "version-2").ok());
  EXPECT_EQ(*store.ReadBlock(1), "version-2");
  EXPECT_TRUE(store.VerifyBlock(1).ok());
}

TEST_F(HdfsFixture, DataNodeServesWritesAndReads) {
  StartCluster(/*with_watchdog=*/false);
  ASSERT_TRUE(WriteBlockViaNet(42, "hello blocks").ok());
  wdg::Endpoint* client = net_.CreateEndpoint("reader");
  const auto reply = client->Call("dn1", kMsgReadBlock, "42", wdg::Ms(500));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, std::string("ok") + '\x1f' + "hello blocks");
  EXPECT_EQ(datanode_->blocks_written(), 1);
}

TEST_F(HdfsFixture, NameNodeTracksHeartbeatsAndBlockCounts) {
  StartCluster(/*with_watchdog=*/false);
  ASSERT_TRUE(WriteBlockViaNet(1, "a").ok());
  ASSERT_TRUE(WriteBlockViaNet(2, "b").ok());
  clock_.SleepFor(wdg::Ms(100));
  EXPECT_TRUE(namenode_->IsLive("dn1", wdg::Ms(100)));
  EXPECT_GE(namenode_->heartbeats_received(), 3);
  EXPECT_EQ(namenode_->LastReportedBlockCount("dn1"), 2);
}

TEST_F(HdfsFixture, BlockScannerFindsRottenBlocks) {
  StartCluster(/*with_watchdog=*/false);
  ASSERT_TRUE(WriteBlockViaNet(5, "scan me please").ok());
  clock_.SleepFor(wdg::Ms(80));
  EXPECT_GE(datanode_->scans_completed(), 1);
  EXPECT_EQ(datanode_->scan_failures(), 0);
  disk_.MarkBadRange(datanode_->blocks().BlockPath(5), 1, 3);
  clock_.SleepFor(wdg::Ms(100));
  EXPECT_GE(datanode_->scan_failures(), 1);
}

TEST_F(HdfsFixture, PermissionsOnlyCheckMissesDeadDisk) {
  // The §3.3 motivation in one test: directory checks pass while every write
  // fails; only the enhanced (mimic) checker catches it.
  StartCluster(/*with_watchdog=*/true);
  ASSERT_TRUE(WriteBlockViaNet(1, "seed block").ok());
  clock_.SleepFor(wdg::Ms(80));

  wdg::FaultSpec dead;
  dead.id = "dead-disk";
  dead.site_pattern = "disk.write";
  dead.kind = wdg::FaultKind::kError;
  injector_.Inject(dead);

  // Weak check: still green.
  EXPECT_TRUE(datanode_->CheckDirsPermissionsOnly().ok());
  // Heartbeats: still green.
  clock_.SleepFor(wdg::Ms(60));
  EXPECT_TRUE(namenode_->IsLive("dn1", wdg::Ms(100)));
  // The generated disk checker (real I/O): alarm with pinpoint.
  ASSERT_TRUE(driver_->WaitForFailure(wdg::Sec(3), [](const wdg::FailureSignature& sig) {
    return sig.location.op_site == "disk.write" &&
           sig.location.function == "HandleWriteBlock";
  }));
}

TEST_F(HdfsFixture, GeneratedWatchdogSilentOnHealthyNode) {
  StartCluster(/*with_watchdog=*/true);
  EXPECT_EQ(report_.program.functions.size(), 3u);  // xceiver, scanner, heartbeat regions
  EXPECT_EQ(report_.ops_without_executor, 0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(WriteBlockViaNet(i, std::string(128, 'd')).ok());
  }
  clock_.SleepFor(wdg::Ms(300));
  for (const auto& failure : driver_->Failures()) {
    ADD_FAILURE() << "unexpected alarm: " << failure.ToString();
  }
}

TEST_F(HdfsFixture, WedgedScannerDetectedWhileHeartbeatsFlow) {
  StartCluster(/*with_watchdog=*/true);
  ASSERT_TRUE(WriteBlockViaNet(1, "block").ok());
  clock_.SleepFor(wdg::Ms(80));  // scanner context becomes ready

  wdg::FaultSpec hang;
  hang.id = "scan-hang";
  hang.site_pattern = "hdfs.scan.verify";
  hang.kind = wdg::FaultKind::kHang;
  injector_.Inject(hang);

  ASSERT_TRUE(driver_->WaitForFailure(wdg::Sec(3), [](const wdg::FailureSignature& sig) {
    return sig.type == wdg::FailureType::kLivenessTimeout &&
           sig.location.op_site == "hdfs.scan.verify";
  }));
  // The gray part: NameNode still thinks everything is fine.
  EXPECT_TRUE(namenode_->IsLive("dn1", wdg::Ms(100)));
  injector_.ClearAll();
}

TEST_F(HdfsFixture, CorruptBlockCaughtByScannerMimic) {
  StartCluster(/*with_watchdog=*/true);
  ASSERT_TRUE(WriteBlockViaNet(9, "important data").ok());
  clock_.SleepFor(wdg::Ms(80));
  disk_.MarkBadRange(datanode_->blocks().BlockPath(9), 2, 4);
  ASSERT_TRUE(driver_->WaitForFailure(wdg::Sec(3), [](const wdg::FailureSignature& sig) {
    return sig.type == wdg::FailureType::kSafetyViolation;
  }));
}

TEST_F(HdfsFixture, NameNodeNoticesDeadDataNode) {
  StartCluster(/*with_watchdog=*/false);
  clock_.SleepFor(wdg::Ms(60));
  EXPECT_TRUE(namenode_->IsLive("dn1", wdg::Ms(100)));
  datanode_->Stop();  // fail-stop: heartbeats cease
  clock_.SleepFor(wdg::Ms(150));
  EXPECT_FALSE(namenode_->IsLive("dn1", wdg::Ms(100)));
  EXPECT_FALSE(namenode_->IsLive("never-registered", wdg::Sec(10)));
}

TEST_F(HdfsFixture, PipelineReplicatesToDownstream) {
  namenode_ = std::make_unique<NameNode>(clock_, net_);
  namenode_->Start();
  DataNodeOptions downstream_options;
  downstream_options.node_id = "dn2";
  DataNode downstream(clock_, disk_, net_, downstream_options);
  ASSERT_TRUE(downstream.Start().ok());

  DataNodeOptions options;
  options.downstream = "dn2";
  datanode_ = std::make_unique<DataNode>(clock_, disk_, net_, options);
  ASSERT_TRUE(datanode_->Start().ok());

  ASSERT_TRUE(WriteBlockViaNet(3, "replicate me").ok());
  EXPECT_EQ(datanode_->pipeline_acks(), 1);
  EXPECT_TRUE(downstream.blocks().HasBlock(3));
  EXPECT_EQ(*downstream.blocks().ReadBlock(3), "replicate me");
  downstream.Stop();
}

TEST_F(HdfsFixture, HungPipelineDetectedWithPinpoint) {
  namenode_ = std::make_unique<NameNode>(clock_, net_);
  namenode_->Start();
  DataNodeOptions downstream_options;
  downstream_options.node_id = "dn2";
  DataNode downstream(clock_, disk_, net_, downstream_options);
  ASSERT_TRUE(downstream.Start().ok());

  DataNodeOptions options;
  options.downstream = "dn2";
  options.heartbeat_interval = wdg::Ms(15);
  datanode_ = std::make_unique<DataNode>(clock_, disk_, net_, options);
  ASSERT_TRUE(datanode_->Start().ok());

  RegisterOpExecutors(registry_, *datanode_);
  wdg::WatchdogDriver::Options driver_options;
  driver_options.release_on_stop = [this] { injector_.ClearAll(); };
  driver_ = std::make_unique<wdg::WatchdogDriver>(clock_, driver_options);
  awd::GenerationOptions gen;
  gen.checker.interval = wdg::Ms(20);
  gen.checker.timeout = wdg::Ms(250);
  report_ = awd::Generate(DescribeIr(datanode_->options()), datanode_->hooks(), registry_,
                          *driver_, gen);
  EXPECT_EQ(report_.ops_without_executor, 0);
  driver_->Start();

  ASSERT_TRUE(WriteBlockViaNet(1, "seed").ok());
  clock_.SleepFor(wdg::Ms(80));

  wdg::FaultSpec hang;
  hang.id = "pipe";
  hang.site_pattern = "net.send.dn2";
  hang.kind = wdg::FaultKind::kHang;
  injector_.Inject(hang);

  ASSERT_TRUE(driver_->WaitForFailure(wdg::Sec(3), [](const wdg::FailureSignature& sig) {
    return sig.type == wdg::FailureType::kLivenessTimeout &&
           sig.location.op_site == "net.send.dn2" &&
           sig.location.function == "HandleWriteBlock";
  }));
  // Heartbeats ride a different link ("nn"), so the NameNode stays fooled.
  EXPECT_TRUE(namenode_->IsLive("dn1", wdg::Ms(100)));
  injector_.ClearAll();
  downstream.Stop();
}

}  // namespace
}  // namespace minihdfs
