// Integration tests: a full KvsNode over SimNet/SimDisk, plus the
// AutoWatchdog-generated mimic watchdog running against it under injected
// gray failures.
#include <gtest/gtest.h>

#include <memory>

#include "src/autowd/autowatchdog.h"
#include "src/common/strings.h"
#include "src/kvs/client.h"
#include "src/kvs/ir_model.h"
#include "src/kvs/server.h"

namespace kvs {
namespace {

class KvsNodeTest : public ::testing::Test {
 protected:
  KvsNodeTest()
      : injector_(clock_), disk_(clock_, injector_, FastDisk()),
        net_(clock_, injector_, FastNet()) {}

  ~KvsNodeTest() override {
    injector_.ClearAll();
    if (node_) {
      node_->Stop();
    }
  }

  static wdg::DiskOptions FastDisk() {
    wdg::DiskOptions options;
    options.base_latency = wdg::Us(5);
    options.per_kb_latency = 0;
    return options;
  }
  static wdg::NetOptions FastNet() {
    wdg::NetOptions options;
    options.base_latency = wdg::Us(20);
    return options;
  }

  KvsOptions LeaderOptions() {
    KvsOptions options;
    options.node_id = "kvs1";
    options.flush_threshold_bytes = 256;
    options.flush_poll = wdg::Ms(10);
    options.compaction_max_tables = 3;
    options.compaction_poll = wdg::Ms(15);
    return options;
  }

  void StartNode(KvsOptions options) {
    node_ = std::make_unique<KvsNode>(clock_, disk_, net_, std::move(options));
    ASSERT_TRUE(node_->Start().ok());
  }

  wdg::RealClock& clock_ = wdg::RealClock::Instance();
  wdg::FaultInjector injector_;
  wdg::SimDisk disk_;
  wdg::SimNet net_;
  std::unique_ptr<KvsNode> node_;
};

TEST_F(KvsNodeTest, ClientSetGetDelRoundtrip) {
  StartNode(LeaderOptions());
  KvsClient client(net_, "c1", "kvs1");
  ASSERT_TRUE(client.Set("user:1", "alice").ok());
  const auto value = client.Get("user:1");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "alice");
  ASSERT_TRUE(client.Append("user:1", "+smith").ok());
  EXPECT_EQ(*client.Get("user:1"), "alice+smith");
  ASSERT_TRUE(client.Del("user:1").ok());
  EXPECT_EQ(client.Get("user:1").status().code(), wdg::StatusCode::kNotFound);
}

TEST_F(KvsNodeTest, GetMissingKeyIsNotFound) {
  StartNode(LeaderOptions());
  KvsClient client(net_, "c1", "kvs1");
  EXPECT_EQ(client.Get("ghost").status().code(), wdg::StatusCode::kNotFound);
}

TEST_F(KvsNodeTest, WritesSurviveFlushAndCompaction) {
  StartNode(LeaderOptions());
  KvsClient client(net_, "c1", "kvs1");
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        client.Set(wdg::StrFormat("key%02d", i), std::string(64, 'a' + (i % 26))).ok());
  }
  // Let flushes and compactions churn.
  clock_.SleepFor(wdg::Ms(300));
  EXPECT_GE(node_->flusher().flush_count(), 1);
  for (int i = 0; i < 40; ++i) {
    const auto value = client.Get(wdg::StrFormat("key%02d", i));
    ASSERT_TRUE(value.ok()) << "key" << i << ": " << value.status().ToString();
    EXPECT_EQ(*value, std::string(64, 'a' + (i % 26)));
  }
}

TEST_F(KvsNodeTest, RecoveryReplaysWal) {
  StartNode(LeaderOptions());
  {
    KvsClient client(net_, "c1", "kvs1");
    ASSERT_TRUE(client.Set("durable", "yes").ok());
  }
  node_->Stop();  // "crash" (memtable content lives only in WAL)
  node_.reset();

  StartNode(LeaderOptions());  // same disk → WAL replay
  KvsClient client(net_, "c2", "kvs1");
  const auto value = client.Get("durable");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "yes");
}

TEST_F(KvsNodeTest, ReplicationReachesFollower) {
  KvsOptions follower_options;
  follower_options.node_id = "kvs2";
  auto follower = std::make_unique<KvsNode>(clock_, disk_, net_, follower_options);
  ASSERT_TRUE(follower->Start().ok());

  KvsOptions leader_options = LeaderOptions();
  leader_options.followers = {"kvs2"};
  StartNode(leader_options);

  KvsClient client(net_, "c1", "kvs1");
  ASSERT_TRUE(client.Set("replicated", "data").ok());

  KvsClient follower_client(net_, "c2", "kvs2");
  bool seen = false;
  for (int i = 0; i < 100 && !seen; ++i) {
    clock_.SleepFor(wdg::Ms(10));
    seen = follower_client.Get("replicated").ok();
  }
  EXPECT_TRUE(seen);
  node_->Stop();
  follower->Stop();
}

TEST_F(KvsNodeTest, HeartbeatsFlowToMonitor) {
  wdg::Endpoint* monitor = net_.CreateEndpoint("monitor");
  KvsOptions options = LeaderOptions();
  options.heartbeat_target = "monitor";
  options.heartbeat_interval = wdg::Ms(10);
  StartNode(options);
  int beats = 0;
  for (int i = 0; i < 20 && beats < 3; ++i) {
    if (monitor->Recv(wdg::Ms(20)).has_value()) {
      ++beats;
    }
  }
  EXPECT_GE(beats, 3);
}

TEST_F(KvsNodeTest, InMemoryModeNeverFlushes) {
  KvsOptions options = LeaderOptions();
  options.in_memory = true;
  StartNode(options);
  KvsClient client(net_, "c1", "kvs1");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.Set(wdg::StrFormat("k%d", i), std::string(100, 'x')).ok());
  }
  clock_.SleepFor(wdg::Ms(100));
  EXPECT_EQ(node_->flusher().flush_count(), 0);
  EXPECT_TRUE(node_->index().Tables().empty());
  EXPECT_EQ(*client.Get("k0"), std::string(100, 'x'));
}

// ------------------------------------------------------ generated watchdog

class KvsWatchdogTest : public KvsNodeTest {
 protected:
  void StartWatchedNode(KvsOptions options) {
    StartNode(std::move(options));
    RegisterOpExecutors(registry_, *node_);

    wdg::WatchdogDriver::Options driver_options;
    driver_options.release_on_stop = [this] { injector_.ClearAll(); };
    driver_ = std::make_unique<wdg::WatchdogDriver>(clock_, driver_options);

    awd::GenerationOptions gen;
    gen.checker.interval = wdg::Ms(20);
    gen.checker.timeout = wdg::Ms(250);
    report_ = awd::Generate(DescribeIr(node_->options()), node_->hooks(), registry_, *driver_,
                            gen);
    driver_->Start();
  }

  ~KvsWatchdogTest() override {
    injector_.ClearAll();
    if (driver_) {
      driver_->Stop();
    }
  }

  awd::OpExecutorRegistry registry_;
  std::unique_ptr<wdg::WatchdogDriver> driver_;
  awd::GenerationReport report_;
};

TEST_F(KvsWatchdogTest, GeneratesTensOfOpsAcrossComponents) {
  KvsOptions options = LeaderOptions();
  options.followers = {"kvs2"};  // replication region needs a follower to monitor
  StartWatchedNode(options);
  // Five long-running regions → five generated checkers.
  EXPECT_EQ(report_.program.functions.size(), 5u);
  EXPECT_GE(report_.program.stats.ops_retained, 10);
  EXPECT_EQ(report_.ops_without_executor, 0);  // every reduced op is mimickable
  EXPECT_GE(report_.hooks_armed, 5);
}

TEST_F(KvsWatchdogTest, SilentOnHealthySystem) {
  StartWatchedNode(LeaderOptions());
  KvsClient client(net_, "c1", "kvs1");
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client.Set(wdg::StrFormat("k%02d", i), std::string(64, 'v')).ok());
  }
  clock_.SleepFor(wdg::Ms(400));
  for (const auto& failure : driver_->Failures()) {
    ADD_FAILURE() << "unexpected alarm: " << failure.ToString();
  }
}

TEST_F(KvsWatchdogTest, DetectsDiskWriteFaultWithPinpoint) {
  StartWatchedNode(LeaderOptions());
  KvsClient client(net_, "c1", "kvs1");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Set(wdg::StrFormat("k%02d", i), std::string(64, 'v')).ok());
  }
  clock_.SleepFor(wdg::Ms(100));  // contexts become ready

  wdg::FaultSpec fault;
  fault.id = "bad_disk";
  fault.site_pattern = "disk.write";
  fault.kind = wdg::FaultKind::kError;
  injector_.Inject(fault);

  ASSERT_TRUE(driver_->WaitForFailure(wdg::Sec(3), [](const wdg::FailureSignature& sig) {
    return sig.location.op_site == "disk.write";
  }));
  injector_.ClearAll();
}

TEST_F(KvsWatchdogTest, DetectsHungReplicationLinkAsLiveness) {
  KvsOptions follower_options;
  follower_options.node_id = "kvs2";
  auto follower = std::make_unique<KvsNode>(clock_, disk_, net_, follower_options);
  ASSERT_TRUE(follower->Start().ok());

  KvsOptions leader = LeaderOptions();
  leader.followers = {"kvs2"};
  StartWatchedNode(leader);

  KvsClient client(net_, "c1", "kvs1");
  ASSERT_TRUE(client.Set("seed", "value").ok());  // makes replication ctx ready
  clock_.SleepFor(wdg::Ms(100));

  wdg::FaultSpec hang;
  hang.id = "link";
  hang.site_pattern = "net.send.kvs2";
  hang.kind = wdg::FaultKind::kHang;
  injector_.Inject(hang);
  ASSERT_TRUE(client.Set("after", "fault").ok());  // client path still works!

  ASSERT_TRUE(driver_->WaitForFailure(wdg::Sec(3), [](const wdg::FailureSignature& sig) {
    return sig.type == wdg::FailureType::kLivenessTimeout &&
           sig.location.op_site == "net.send.kvs2";
  }));
  const auto failures = driver_->Failures();
  bool pinned = false;
  for (const auto& sig : failures) {
    if (sig.location.op_site == "net.send.kvs2") {
      pinned = true;
      EXPECT_EQ(sig.location.function, "ReplicateBatch");
      EXPECT_EQ(sig.location.component, "kvs.replication");
    }
  }
  EXPECT_TRUE(pinned);
  injector_.ClearAll();
  driver_->Stop();
  follower->Stop();
}

TEST_F(KvsWatchdogTest, DetectsPartitionCorruptionAsSafety) {
  StartWatchedNode(LeaderOptions());
  KvsClient client(net_, "c1", "kvs1");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.Set(wdg::StrFormat("k%02d", i), std::string(64, 'v')).ok());
  }
  // Wait for at least one flush so a partition exists.
  for (int i = 0; i < 100 && node_->partitions().Partitions().empty(); ++i) {
    clock_.SleepFor(wdg::Ms(10));
  }
  const auto partitions = node_->partitions().Partitions();
  ASSERT_FALSE(partitions.empty());
  disk_.MarkBadRange(partitions.front().path, 4, 8);  // media goes bad

  ASSERT_TRUE(driver_->WaitForFailure(wdg::Sec(3), [](const wdg::FailureSignature& sig) {
    return sig.type == wdg::FailureType::kSafetyViolation;
  }));
}

TEST_F(KvsWatchdogTest, InMemoryConfigKeepsFlushCheckerDormant) {
  // The paper's spurious-report example: in-memory kvs never flushes, so the
  // flush checker's context never becomes ready and it must stay silent.
  KvsOptions options = LeaderOptions();
  options.in_memory = true;
  StartWatchedNode(options);
  KvsClient client(net_, "c1", "kvs1");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Set(wdg::StrFormat("k%d", i), std::string(64, 'x')).ok());
  }
  clock_.SleepFor(wdg::Ms(300));
  const auto stats = driver_->StatsFor("FlushLoop_reduced");
  EXPECT_GT(stats.context_not_ready, 0);
  EXPECT_EQ(stats.fails, 0);
  for (const auto& failure : driver_->Failures()) {
    EXPECT_NE(failure.checker_name, "FlushLoop_reduced")
        << "spurious flush alarm in in-memory mode";
  }
}

TEST_F(KvsWatchdogTest, AllPlannedHooksFireUnderRepresentativeWorkload) {
  // Drift guard: if the IR model names a hook site the code never fires, the
  // checkers it feeds would silently stay dormant forever. Exercise every
  // code path and assert full hook coverage.
  KvsOptions options = LeaderOptions();
  options.followers = {"kvs2"};
  KvsOptions follower_options;
  follower_options.node_id = "kvs2";
  auto follower = std::make_unique<KvsNode>(clock_, disk_, net_, follower_options);
  ASSERT_TRUE(follower->Start().ok());
  StartWatchedNode(options);

  KvsClient client(net_, "c1", "kvs1");
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          client.Set(wdg::StrFormat("w%02d-k%d", wave, i), std::string(64, 'v')).ok());
    }
    (void)client.Get("w00-k0");
    clock_.SleepFor(wdg::Ms(20));
    if (awd::UnfiredHooks(report_.plan, node_->hooks()).empty()) {
      break;  // full coverage reached early
    }
  }
  const auto unfired = awd::UnfiredHooks(report_.plan, node_->hooks());
  EXPECT_TRUE(unfired.empty()) << "IR/code drift: hook '" << (unfired.empty() ? "" : unfired[0])
                               << "' planned but never fired";
  driver_->Stop();
  follower->Stop();
}

}  // namespace
}  // namespace kvs
