// Tests for AutoWatchdog: program logic reduction, context inference,
// checker synthesis, codegen, and the end-to-end Generate pipeline.
#include <gtest/gtest.h>

#include <set>

#include "src/autowd/autowatchdog.h"
#include "src/autowd/codegen.h"
#include "src/autowd/context_infer.h"
#include "src/autowd/reduce.h"
#include "src/autowd/synth.h"
#include "src/common/clock.h"
#include "src/watchdog/driver.h"

namespace awd {
namespace {

// Same Figure-2-shaped module as ir_test.cc (duplicated to keep each test
// binary self-contained).
Module FigureTwoModule() {
  Module module("minizk");
  module.AddFunction(FunctionBuilder("snapshotLoop", "zk.snapshot")
                         .LongRunning()
                         .Op(OpKind::kIoCreate, "disk.create", {"snapName"}, {},
                             "create snapshot file")
                         .LoopBegin()
                         .Compute("wait for snapshot trigger")
                         .Call("serializeSnapshot", {"oa"})
                         .Op(OpKind::kIoFsync, "disk.fsync", {"snapName"}, {}, "fsync snapshot")
                         .LoopEnd()
                         .Build());
  module.AddFunction(FunctionBuilder("serializeSnapshot", "zk.snapshot")
                         .Param("oa")
                         .Compute("scount = 0")
                         .Call("serialize", {"oa", "tag"})
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("serialize", "zk.snapshot")
                         .Param("oa")
                         .Param("tag")
                         .Compute("header bookkeeping")
                         .Call("serializeNode", {"oa", "path"})
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("serializeNode", "zk.snapshot")
                         .Param("oa")
                         .Param("path")
                         .Compute("node = getNode(path)", {"path"}, {"node"})
                         .Op(OpKind::kLockAcquire, "lock.datatree.node", {"node"}, {},
                             "synchronized(node)")
                         .Op(OpKind::kIoWrite, "disk.write", {"oa", "node"}, {},
                             "oa.writeRecord(node, \"node\")")
                         .Compute("children = node.getChildren()", {"node"}, {"children"})
                         .Op(OpKind::kLockRelease, "lock.datatree.node", {"node"})
                         .Call("serializeNode", {"oa", "path"})
                         .Return()
                         .Build());
  return module;
}

std::set<std::string> RetainedSites(const ReducedProgram& program) {
  std::set<std::string> sites;
  for (const ReducedFunction& fn : program.functions) {
    for (const ReducedOp& op : fn.ops) {
      sites.insert(op.site);
    }
  }
  return sites;
}

// ---------------------------------------------------------------- reduction

TEST(ReducerTest, KeepsVulnerableOpsAlongCallChain) {
  const Module module = FigureTwoModule();
  const ReducedProgram program = Reducer(module).Reduce();
  ASSERT_EQ(program.functions.size(), 1u);
  const auto sites = RetainedSites(program);
  // Figure 2's walk: the writeRecord I/O and the node lock survive, plus the
  // loop's own fsync. Pure compute and lock-release do not.
  EXPECT_EQ(sites.count("disk.write"), 1u);
  EXPECT_EQ(sites.count("lock.datatree.node"), 1u);
  EXPECT_EQ(sites.count("disk.fsync"), 1u);
  EXPECT_EQ(sites.size(), 3u);
}

TEST(ReducerTest, ExcludesInitializationCode) {
  const Module module = FigureTwoModule();
  const ReducedProgram program = Reducer(module).Reduce();
  // disk.create happens before the loop — initialization, not continuous.
  EXPECT_EQ(RetainedSites(program).count("disk.create"), 0u);
}

TEST(ReducerTest, RecursionTerminates) {
  // serializeNode calls itself; reduction must not loop forever and must not
  // duplicate its ops.
  const Module module = FigureTwoModule();
  const ReducedProgram program = Reducer(module).Reduce();
  int write_ops = 0;
  for (const ReducedFunction& fn : program.functions) {
    for (const ReducedOp& op : fn.ops) {
      write_ops += op.site == "disk.write" ? 1 : 0;
    }
  }
  EXPECT_EQ(write_ops, 1);
}

TEST(ReducerTest, ProvenanceIsRecorded) {
  const Module module = FigureTwoModule();
  const ReducedProgram program = Reducer(module).Reduce();
  const ReducedFunction& fn = program.functions[0];
  EXPECT_EQ(fn.origin, "snapshotLoop");
  EXPECT_EQ(fn.name, "snapshotLoop_reduced");
  bool found = false;
  for (const ReducedOp& op : fn.ops) {
    if (op.site == "disk.write") {
      found = true;
      EXPECT_EQ(op.origin_function, "serializeNode");
      EXPECT_EQ(op.origin_instr_id, 3);
      EXPECT_EQ(op.component, "zk.snapshot");
    }
  }
  EXPECT_TRUE(found);
}

TEST(ReducerTest, SimilarOpDedupCollapsesRepeats) {
  Module module("m");
  module.AddFunction(FunctionBuilder("writer", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoWrite, "disk.write", {"a"})
                         .Op(OpKind::kIoWrite, "disk.write", {"b"})
                         .Op(OpKind::kIoWrite, "disk.write", {"c"})
                         .LoopEnd()
                         .Build());
  const ReducedProgram with = Reducer(module).Reduce();
  EXPECT_EQ(with.functions[0].ops.size(), 1u);  // "invoke write() once"
  EXPECT_EQ(with.stats.deduped_similar, 2);

  ReducerOptions no_dedup;
  no_dedup.dedup_similar = false;
  const ReducedProgram without = Reducer(module, no_dedup).Reduce();
  EXPECT_EQ(without.functions[0].ops.size(), 3u);
}

TEST(ReducerTest, GlobalDedupAcrossRoots) {
  Module module("m");
  module.AddFunction(FunctionBuilder("rootA", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Call("shared")
                         .LoopEnd()
                         .Build());
  module.AddFunction(FunctionBuilder("rootB", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Call("shared")
                         .Op(OpKind::kNetSend, "net.send.peer", {"msg"})
                         .LoopEnd()
                         .Build());
  module.AddFunction(FunctionBuilder("shared", "c")
                         .Op(OpKind::kIoWrite, "disk.write", {"x"})
                         .Build());
  const ReducedProgram program = Reducer(module).Reduce();
  // rootA claims shared's write; rootB keeps only its own net.send.
  int total_ops = 0;
  for (const ReducedFunction& fn : program.functions) {
    total_ops += static_cast<int>(fn.ops.size());
  }
  EXPECT_EQ(total_ops, 2);
  EXPECT_EQ(program.stats.deduped_global, 1);
}

TEST(ReducerTest, MaxDepthBoundsTraversal) {
  Module module("m");
  module.AddFunction(FunctionBuilder("root", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Call("f1")
                         .LoopEnd()
                         .Build());
  module.AddFunction(FunctionBuilder("f1", "c").Call("f2").Build());
  module.AddFunction(
      FunctionBuilder("f2", "c").Op(OpKind::kIoWrite, "disk.write", {"x"}).Build());
  ReducerOptions shallow;
  shallow.max_call_depth = 1;
  EXPECT_TRUE(Reducer(module, shallow).Reduce().functions.empty());
  ReducerOptions deep;
  deep.max_call_depth = 8;
  EXPECT_EQ(Reducer(module, deep).Reduce().functions.size(), 1u);
}

TEST(ReducerTest, AnnotatedComputeRetained) {
  Module module("m");
  module.AddFunction(FunctionBuilder("root", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Compute("validatePartition(p)", {"p"})
                         .Vulnerable()  // developer tag (§4.2 config)
                         .LoopEnd()
                         .Build());
  // Sites are required for executor dispatch; annotated compute uses label site.
  Module module2("m2");
  module2.AddFunction(FunctionBuilder("root", "c")
                          .LongRunning()
                          .LoopBegin()
                          .Op(OpKind::kCompute, "kvs.partition.validate", {"p"}, {},
                              "validatePartition")
                          .Vulnerable()
                          .LoopEnd()
                          .Build());
  const ReducedProgram program = Reducer(module2).Reduce();
  ASSERT_EQ(program.functions.size(), 1u);
  EXPECT_EQ(program.functions[0].ops[0].site, "kvs.partition.validate");
}

// ------------------------------------------------------------ context infer

TEST(ContextInferTest, VariablesAreUnionOfOpArgs) {
  const Module module = FigureTwoModule();
  const ReducedProgram program = Reducer(module).Reduce();
  const HookPlan plan = InferContexts(program);
  ASSERT_EQ(plan.contexts.size(), 1u);
  const ContextSpec& spec = plan.contexts[0];
  EXPECT_EQ(spec.context_name, "snapshotLoop_ctx");
  const std::set<std::string> vars(spec.variables.begin(), spec.variables.end());
  EXPECT_EQ(vars.count("oa"), 1u);
  EXPECT_EQ(vars.count("node"), 1u);
  EXPECT_EQ(vars.count("snapName"), 1u);
}

TEST(ContextInferTest, HookBeforeFirstRetainedOpPerOrigin) {
  const Module module = FigureTwoModule();
  const ReducedProgram program = Reducer(module).Reduce();
  const HookPlan plan = InferContexts(program);
  bool node_hook = false;
  for (const HookPoint& point : plan.points) {
    if (point.function == "serializeNode") {
      node_hook = true;
      // Figure 2: hook inserted right before writeRecord... but the lock
      // acquire (instr 2) is the first retained op from serializeNode.
      EXPECT_EQ(point.before_instr_id, 2);
      EXPECT_EQ(point.hook_site, "serializeNode:2");
      EXPECT_EQ(point.context_name, "snapshotLoop_ctx");
      const std::set<std::string> capture(point.capture.begin(), point.capture.end());
      EXPECT_EQ(capture.count("node"), 1u);
      EXPECT_EQ(capture.count("oa"), 1u);
    }
  }
  EXPECT_TRUE(node_hook);
}

TEST(ContextInferTest, HookSiteNaming) {
  EXPECT_EQ(HookSiteName("Flush", 7), "Flush:7");
}

// ----------------------------------------------------------------- executor

TEST(OpExecutorRegistryTest, ExactBeatsGenericByOrder) {
  OpExecutorRegistry registry;
  registry.Register("disk.write",
                    [](const ReducedOp&, const wdg::CheckContext&, const std::string&) {
                      return wdg::IoError("specific");
                    });
  registry.Register("*", [](const ReducedOp&, const wdg::CheckContext&, const std::string&) {
    return wdg::Status::Ok();
  });
  ReducedOp op;
  op.site = "disk.write";
  wdg::CheckContext ctx("c");
  EXPECT_EQ(registry.Execute(op, ctx, "t").code(), wdg::StatusCode::kIoError);
  op.site = "anything.else";
  EXPECT_TRUE(registry.Execute(op, ctx, "t").ok());
}

TEST(OpExecutorRegistryTest, UnknownSiteIsUnimplemented) {
  OpExecutorRegistry registry;
  ReducedOp op;
  op.site = "mystery.op";
  wdg::CheckContext ctx("c");
  EXPECT_EQ(registry.Execute(op, ctx, "t").code(), wdg::StatusCode::kUnimplemented);
  EXPECT_FALSE(registry.HasExecutorFor("mystery.op"));
}

// --------------------------------------------------------- generated checker

ReducedFunction TwoOpFunction() {
  ReducedFunction fn;
  fn.name = "flushLoop_reduced";
  fn.origin = "flushLoop";
  fn.component = "kvs.flusher";
  ReducedOp write;
  write.kind = OpKind::kIoWrite;
  write.site = "disk.write";
  write.origin_function = "Flush";
  write.origin_instr_id = 4;
  write.component = "kvs.flusher";
  write.args = {"file"};
  fn.ops.push_back(write);
  ReducedOp fsync;
  fsync.kind = OpKind::kIoFsync;
  fsync.site = "disk.fsync";
  fsync.origin_function = "Flush";
  fsync.origin_instr_id = 5;
  fsync.component = "kvs.flusher";
  fn.ops.push_back(fsync);
  return fn;
}

TEST(GeneratedCheckerTest, GatesOnContextReady) {
  OpExecutorRegistry registry;
  int executed = 0;
  registry.Register("*", [&](const ReducedOp&, const wdg::CheckContext&, const std::string&) {
    ++executed;
    return wdg::Status::Ok();
  });
  wdg::CheckContext ctx("flushLoop_ctx");
  GeneratedChecker checker(TwoOpFunction(), &ctx, &registry);
  EXPECT_EQ(checker.Check().outcome, wdg::CheckOutcome::kContextNotReady);
  EXPECT_EQ(executed, 0);
  ctx.MarkReady(1);
  EXPECT_EQ(checker.Check().outcome, wdg::CheckOutcome::kPass);
  EXPECT_EQ(executed, 2);
  EXPECT_EQ(checker.ops_executed(), 2);
}

TEST(GeneratedCheckerTest, FailurePinpointsOpAndCarriesContext) {
  OpExecutorRegistry registry;
  registry.Register("disk.write",
                    [](const ReducedOp&, const wdg::CheckContext&, const std::string&) {
                      return wdg::IoError("mimicked write exploded");
                    });
  registry.Register("*", [](const ReducedOp&, const wdg::CheckContext&, const std::string&) {
    return wdg::Status::Ok();
  });
  static const auto kFile = wdg::ContextKey<std::string>::Of("file");
  wdg::CheckContext ctx("flushLoop_ctx");
  ctx.Set(kFile, "/sst/42");
  ctx.MarkReady(1);
  GeneratedChecker checker(TwoOpFunction(), &ctx, &registry);
  const wdg::CheckResult result = checker.Check();
  ASSERT_EQ(result.outcome, wdg::CheckOutcome::kFail);
  EXPECT_EQ(result.signature.type, wdg::FailureType::kOperationError);
  EXPECT_EQ(result.signature.location.function, "Flush");
  EXPECT_EQ(result.signature.location.op_site, "disk.write");
  EXPECT_EQ(result.signature.location.instr_id, 4);
  EXPECT_NE(result.signature.context_dump.find("/sst/42"), std::string::npos);
}

TEST(GeneratedCheckerTest, TimeoutClassifiedAsLiveness) {
  EXPECT_EQ(ClassifyOpFailure(wdg::StatusCode::kTimeout),
            wdg::FailureType::kLivenessTimeout);
  EXPECT_EQ(ClassifyOpFailure(wdg::StatusCode::kCorruption),
            wdg::FailureType::kSafetyViolation);
  EXPECT_EQ(ClassifyOpFailure(wdg::StatusCode::kIoError),
            wdg::FailureType::kOperationError);
}

TEST(GeneratedCheckerTest, UnimplementedOpsAreSkippedNotFatal) {
  OpExecutorRegistry registry;  // no executors at all
  wdg::CheckContext ctx("c");
  ctx.MarkReady(1);
  GeneratedChecker checker(TwoOpFunction(), &ctx, &registry);
  EXPECT_EQ(checker.Check().outcome, wdg::CheckOutcome::kPass);
  EXPECT_EQ(checker.ops_skipped(), 2);
}

// ------------------------------------------------------------------ codegen

TEST(CodegenTest, CheckerSourceLooksLikeFigureThree) {
  const Module module = FigureTwoModule();
  const ReducedProgram program = Reducer(module).Reduce();
  const HookPlan plan = InferContexts(program);
  const std::string source = EmitCheckerSource(program.functions[0], plan);
  EXPECT_NE(source.find("snapshotLoop_reduced"), std::string::npos);
  EXPECT_NE(source.find("snapshotLoop_invoke"), std::string::npos);
  EXPECT_NE(source.find("ContextFactory"), std::string::npos);
  EXPECT_NE(source.find("checker context not ready"), std::string::npos);
  EXPECT_NE(source.find("disk.write"), std::string::npos);
  // Captured variables are read through the typed-key API, not the
  // deprecated string accessors or the pre-v2 positional args_getter.
  EXPECT_NE(source.find("wdg::ContextKey<wdg::CtxValue>::Of"), std::string::npos);
  EXPECT_EQ(source.find("args_getter"), std::string::npos);
  EXPECT_EQ(source.find("GetString("), std::string::npos);
}

TEST(CodegenTest, ReductionTraceMarksKeepDropAndHooks) {
  const Module module = FigureTwoModule();
  const ReducedProgram program = Reducer(module).Reduce();
  const HookPlan plan = InferContexts(program);
  const std::string trace = EmitReductionTrace(module, program, plan);
  EXPECT_NE(trace.find("KEEP"), std::string::npos);
  EXPECT_NE(trace.find("drop"), std::string::npos);
  EXPECT_NE(trace.find("+ hook serializeNode:2"), std::string::npos);
  EXPECT_NE(trace.find("[long-running]"), std::string::npos);
}

TEST(CodegenTest, SummaryCountsAreConsistent) {
  const Module module = FigureTwoModule();
  const ReducedProgram program = Reducer(module).Reduce();
  const std::string summary = SummarizeReduction(program);
  EXPECT_NE(summary.find("minizk"), std::string::npos);
  EXPECT_NE(summary.find("1 long-running roots"), std::string::npos);
}

// ------------------------------------------------------- generate (pipeline)

TEST(GenerateTest, ArmsHooksAndRegistersCheckers) {
  const Module module = FigureTwoModule();
  wdg::HookSet hooks;
  OpExecutorRegistry registry;
  registry.Register("*", [](const ReducedOp&, const wdg::CheckContext&, const std::string&) {
    return wdg::Status::Ok();
  });
  wdg::WatchdogDriver driver(wdg::RealClock::Instance());
  const GenerationReport report = Generate(module, hooks, registry, driver);
  EXPECT_EQ(report.checker_names.size(), 1u);
  EXPECT_GE(report.hooks_armed, 2);  // snapshotLoop + serializeNode origins
  EXPECT_EQ(driver.checker_count(), 1);
  EXPECT_TRUE(hooks.Site("serializeNode:2")->armed());
  EXPECT_EQ(report.ops_without_executor, 0);
}

TEST(GenerateTest, EndToEndDetectionThroughDriver) {
  const Module module = FigureTwoModule();
  wdg::HookSet hooks;
  OpExecutorRegistry registry;
  std::atomic<bool> disk_broken{false};
  registry.Register("disk.write",
                    [&](const ReducedOp&, const wdg::CheckContext&, const std::string&) {
                      return disk_broken ? wdg::IoError("bad sector") : wdg::Status::Ok();
                    });
  registry.Register("*", [](const ReducedOp&, const wdg::CheckContext&, const std::string&) {
    return wdg::Status::Ok();
  });

  wdg::WatchdogDriver driver(wdg::RealClock::Instance());
  GenerationOptions options;
  options.checker.interval = wdg::Ms(10);
  options.checker.timeout = wdg::Ms(100);
  Generate(module, hooks, registry, driver, options);
  ASSERT_TRUE(driver.Start().ok());

  // The "main program" reaches the hook point and synchronizes state.
  static const auto kOa = wdg::ContextKey<std::string>::Of("oa");
  static const auto kNode = wdg::ContextKey<std::string>::Of("node");
  static const auto kSnapName = wdg::ContextKey<std::string>::Of("snapName");
  hooks.Site("serializeNode:2")->Fire([&](wdg::CheckContext& ctx) {
    ctx.Set(kOa, "archive0");
    ctx.Set(kNode, "/zk/node1");
    ctx.MarkReady(wdg::RealClock::Instance().NowNs());
  });
  hooks.Site("snapshotLoop:4")->Fire([&](wdg::CheckContext& ctx) {
    ctx.Set(kSnapName, "snap.0");
    ctx.MarkReady(wdg::RealClock::Instance().NowNs());
  });

  wdg::RealClock::Instance().SleepFor(wdg::Ms(60));
  EXPECT_TRUE(driver.Failures().empty());  // healthy program, silent watchdog

  disk_broken = true;  // production fault appears
  ASSERT_TRUE(driver.WaitForFailure(wdg::Sec(2)));
  EXPECT_TRUE(driver.Stop().ok());
  const auto failure = *driver.FirstFailure();
  EXPECT_EQ(failure.location.op_site, "disk.write");
  EXPECT_EQ(failure.location.function, "serializeNode");
  EXPECT_NE(failure.context_dump.find("/zk/node1"), std::string::npos);
}

// Static cost priors must differentiate checker hang deadlines *before* the
// driver's latency histograms have any samples: a cheap read-loop checker
// starts at the 200 ms prior floor while a send-heavy checker keeps the
// configured timeout, visible in DriverMetrics() straight after Generate().
TEST(GenerateTest, CostPriorsSeedColdStartDeadlines) {
  Module module("priors");
  module.AddFunction(FunctionBuilder("CheapLoop", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kIoRead, "disk.cheap", {"key"}, {"val"})
                         .LoopEnd()
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("SlowLoop", "c")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kNetSend, "net.s1", {"m1"}, {})
                         .Op(OpKind::kNetSend, "net.s2", {"m2"}, {})
                         .Op(OpKind::kIoFsync, "disk.sync", {"f"}, {})
                         .LoopEnd()
                         .Return()
                         .Build());

  wdg::HookSet hooks;
  OpExecutorRegistry registry;
  registry.Register("*", [](const ReducedOp&, const wdg::CheckContext&, const std::string&) {
    return wdg::Status::Ok();
  });
  wdg::WatchdogDriver driver(wdg::RealClock::Instance());
  GenerationOptions options;
  options.checker.timeout = wdg::Ms(400);
  const GenerationReport report = Generate(module, hooks, registry, driver, options);

  // Both checkers got a prior; the generator caps priors at the timeout.
  ASSERT_EQ(report.deadline_priors.size(), 2u);
  EXPECT_EQ(report.deadline_priors.at("CheapLoop_reduced"), wdg::Ms(200));
  EXPECT_EQ(report.deadline_priors.at("SlowLoop_reduced"), wdg::Ms(400));

  // No executions have run, yet the effective deadlines already differ and
  // the cheap checker's is strictly tighter than the static timeout.
  const wdg::DriverMetricsSnapshot metrics = driver.DriverMetrics();
  EXPECT_EQ(metrics.checker_deadline_ns.at("CheapLoop_reduced"),
            static_cast<double>(wdg::Ms(200)));
  EXPECT_EQ(metrics.checker_deadline_ns.at("SlowLoop_reduced"),
            static_cast<double>(wdg::Ms(400)));
  EXPECT_EQ(metrics.deadline_priors_active, 2);
  EXPECT_EQ(metrics.ToMap().at("wdg.driver.deadline.priors_active"), 2.0);

  // Disabling the cost prior restores the uniform static timeout.
  wdg::WatchdogDriver plain_driver(wdg::RealClock::Instance());
  GenerationOptions no_priors = options;
  no_priors.cost_prior.enabled = false;
  const GenerationReport plain = Generate(module, hooks, registry, plain_driver, no_priors);
  EXPECT_TRUE(plain.deadline_priors.empty());
  const wdg::DriverMetricsSnapshot plain_metrics = plain_driver.DriverMetrics();
  EXPECT_EQ(plain_metrics.checker_deadline_ns.at("CheapLoop_reduced"),
            static_cast<double>(wdg::Ms(400)));
  EXPECT_EQ(plain_metrics.deadline_priors_active, 0);
}

}  // namespace
}  // namespace awd
