// Coverage sweep: exercises surfaces the focused suites don't — failure-log
// durability under disk faults, workload generator end-to-end, partition
// quarantine edge cases, SimNet healing, WDT stage names, multi-follower
// replication.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/config.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/eval/workload.h"
#include "src/kvs/client.h"
#include "src/kvs/server.h"
#include "src/watchdog/failure_log.h"
#include "src/supervisor/watchdog_timer.h"

namespace wdg {
namespace {

TEST(FailureLogFaultTest, WriteErrorsCountedNotThrown) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  SimDisk disk(clock, injector, DiskOptions{.base_latency = 0, .per_kb_latency = 0});
  FailureLog log(disk, "/wdg/failures.log");

  FaultSpec broken;
  broken.id = "log-disk";
  broken.site_pattern = "disk.append";
  broken.kind = FaultKind::kError;
  injector.Inject(broken);

  FailureSignature sig;
  sig.checker_name = "c";
  log.OnFailure(sig);  // must not throw into the driver
  EXPECT_GE(log.write_errors(), 1);
  injector.ClearAll();
  log.OnFailure(sig);
  const auto records = log.Load();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);  // only the post-recovery record landed
}

TEST(WatchdogTimerTest, FiredStageNamesRecorded) {
  RealClock& clock = RealClock::Instance();
  WatchdogTimerOptions options;
  options.stage_interval = Ms(20);
  WatchdogTimer wdt(clock, options);
  wdt.AddStage("warn", nullptr);   // null action is legal: log-only stage
  wdt.AddStage("reset", nullptr);
  wdt.Start();
  clock.SleepFor(Ms(80));
  wdt.Stop();
  const auto names = wdt.FiredStageNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "warn");
  EXPECT_EQ(names[1], "reset");
}

TEST(SimNetTest, HealAllRestoresEveryPartition) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  SimNet net(clock, injector);
  net.CreateEndpoint("a");
  net.CreateEndpoint("b");
  net.CreateEndpoint("c");
  net.Partition("a", "b");
  net.Partition("b", "c");
  EXPECT_TRUE(net.IsPartitioned("a", "b"));
  EXPECT_TRUE(net.IsPartitioned("c", "b"));
  net.HealAll();
  EXPECT_FALSE(net.IsPartitioned("a", "b"));
  EXPECT_FALSE(net.IsPartitioned("b", "c"));
}

class KvsSweepFixture : public ::testing::Test {
 protected:
  KvsSweepFixture()
      : injector_(clock_),
        disk_(clock_, injector_, DiskOptions{.base_latency = Us(5), .per_kb_latency = 0}),
        net_(clock_, injector_, NetOptions{.base_latency = Us(20)}) {}

  ~KvsSweepFixture() override { injector_.ClearAll(); }

  RealClock& clock_ = RealClock::Instance();
  FaultInjector injector_;
  SimDisk disk_;
  SimNet net_;
};

TEST_F(KvsSweepFixture, WorkloadGeneratorDrivesANodeEndToEnd) {
  kvs::KvsOptions options;
  options.node_id = "kvs1";
  options.flush_threshold_bytes = 1024;
  options.flush_poll = Ms(10);
  kvs::KvsNode node(clock_, disk_, net_, options);
  ASSERT_TRUE(node.Start().ok());

  WorkloadOptions workload_options;
  workload_options.op_interval = Ms(2);
  workload_options.zipf_s = 1.0;  // hot-key workload
  workload_options.append_fraction = 0.1;
  WorkloadGenerator workload(clock_, net_, "kvs1", workload_options);
  std::atomic<int64_t> outcomes{0};
  workload.set_on_outcome([&](const Status&) { outcomes.fetch_add(1); });
  workload.Start();
  clock_.SleepFor(Ms(400));
  workload.Stop();

  EXPECT_GT(workload.requests(), 50);
  EXPECT_EQ(workload.errors(), 0);
  EXPECT_EQ(outcomes.load(), workload.requests());
  EXPECT_GT(workload.MeanLatencyNs(), 0);
  EXPECT_GE(workload.P99LatencyNs(), workload.MeanLatencyNs());
  node.Stop();
}

TEST_F(KvsSweepFixture, QuarantineOfUnknownPartitionFails) {
  kvs::Memtable memtable;
  kvs::PartitionManager partitions(disk_);
  EXPECT_FALSE(partitions.Quarantine("/sst/ghost").ok());
  EXPECT_EQ(partitions.quarantined_count(), 0);
}

TEST_F(KvsSweepFixture, IndexRemoveTableDropsFromReads) {
  kvs::Memtable memtable;
  kvs::Index index(disk_, memtable);
  ASSERT_TRUE(kvs::SsTable::Write(disk_, "/t1", {{"k", {"v", false}}}).ok());
  index.AddTable("/t1");
  EXPECT_TRUE(index.Get("k")->has_value());
  index.RemoveTable("/t1");
  EXPECT_FALSE(index.Get("k")->has_value());
  EXPECT_TRUE(index.Tables().empty());
}

TEST_F(KvsSweepFixture, TwoFollowersBothConverge) {
  kvs::KvsOptions f1_options;
  f1_options.node_id = "kvs2";
  kvs::KvsNode f1(clock_, disk_, net_, f1_options);
  ASSERT_TRUE(f1.Start().ok());
  kvs::KvsOptions f2_options;
  f2_options.node_id = "kvs3";
  kvs::KvsNode f2(clock_, disk_, net_, f2_options);
  ASSERT_TRUE(f2.Start().ok());

  kvs::KvsOptions leader_options;
  leader_options.node_id = "kvs1";
  leader_options.followers = {"kvs2", "kvs3"};
  kvs::KvsNode leader(clock_, disk_, net_, leader_options);
  ASSERT_TRUE(leader.Start().ok());

  kvs::KvsClient client(net_, "c", "kvs1");
  ASSERT_TRUE(client.Set("fanout", "both").ok());

  bool f1_seen = false;
  bool f2_seen = false;
  kvs::KvsClient c1(net_, "r1", "kvs2");
  kvs::KvsClient c2(net_, "r2", "kvs3");
  for (int i = 0; i < 100 && !(f1_seen && f2_seen); ++i) {
    clock_.SleepFor(Ms(10));
    f1_seen = f1_seen || c1.Get("fanout").ok();
    f2_seen = f2_seen || c2.Get("fanout").ok();
  }
  EXPECT_TRUE(f1_seen);
  EXPECT_TRUE(f2_seen);
  leader.Stop();
  f1.Stop();
  f2.Stop();
}

TEST(ConfigSweepTest, OverwriteAndWhitespaceHandling) {
  ConfigStore config;
  config.ParseInline(" a = 1 ,a=2,  b = x y ");
  EXPECT_EQ(config.GetInt("a"), 2);       // last write wins
  EXPECT_EQ(config.GetString("b"), "x y");
  config.Set("a", "3");
  EXPECT_EQ(config.GetInt("a"), 3);
}

TEST(LoggingSweepTest, LevelGateIsCheap) {
  // Disabled levels must not even build the message.
  Logger::Instance().set_min_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return "built";
  };
  WDG_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  Logger::Instance().set_min_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace wdg
