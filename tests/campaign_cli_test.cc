// Unit tests for the wdg_campaign flag grammar and the --list rendering,
// extracted into src/eval/campaign_cli.{h,cc} so the CLI surface is covered
// without spawning the binary.
#include "src/eval/campaign_cli.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/clock.h"
#include "src/eval/scenario.h"

namespace wdg {
namespace {

CampaignParseResult Parse(std::vector<std::string> args) {
  return ParseCampaignArgs(args);
}

TEST(CampaignCliTest, DefaultsWhenNoFlagsGiven) {
  const auto result = Parse({});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.options.scenario_filter, "");
  EXPECT_EQ(result.options.seeds, 1);
  EXPECT_FALSE(result.options.validation);
  EXPECT_FALSE(result.options.suppress);
  EXPECT_EQ(result.options.observe, Ms(1000));
  EXPECT_FALSE(result.options.list_only);
  EXPECT_FALSE(result.options.show_help);
}

TEST(CampaignCliTest, ParsesTheFullFlagSet) {
  const auto result = Parse({"--scenario", "replication", "--seeds", "3",
                             "--observe-ms", "2500", "--validation",
                             "--suppress", "--list"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.options.scenario_filter, "replication");
  EXPECT_EQ(result.options.seeds, 3);
  EXPECT_EQ(result.options.observe, Ms(2500));
  EXPECT_TRUE(result.options.validation);
  EXPECT_TRUE(result.options.suppress);
  EXPECT_TRUE(result.options.list_only);
}

TEST(CampaignCliTest, RejectsAnUnknownFlag) {
  const auto result = Parse({"--frobnicate"});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown flag"), std::string::npos);
  EXPECT_NE(result.error.find("--frobnicate"), std::string::npos);
}

TEST(CampaignCliTest, RejectsAFlagMissingItsValue) {
  for (const char* flag : {"--scenario", "--seeds", "--observe-ms"}) {
    const auto result = Parse({flag});
    EXPECT_FALSE(result.ok) << flag;
    EXPECT_NE(result.error.find("requires a value"), std::string::npos) << flag;
    EXPECT_NE(result.error.find(flag), std::string::npos) << flag;
  }
}

TEST(CampaignCliTest, ObserveMsEnforcesBoundsAndStrictIntegers) {
  // In-range values, including both endpoints, parse.
  EXPECT_TRUE(Parse({"--observe-ms", "1"}).ok);
  EXPECT_TRUE(Parse({"--observe-ms", "600000"}).ok);
  EXPECT_EQ(Parse({"--observe-ms", "600000"}).options.observe,
            Ms(kCampaignMaxObserveMs));
  // Out-of-range and malformed values are rejected with a bounds message.
  for (const char* bad : {"0", "-5", "600001", "abc", "5x", ""}) {
    const auto result = Parse({"--observe-ms", bad});
    EXPECT_FALSE(result.ok) << "'" << bad << "'";
    EXPECT_NE(result.error.find("--observe-ms"), std::string::npos) << bad;
  }
}

TEST(CampaignCliTest, SeedsEnforceBoundsAndStrictIntegers) {
  EXPECT_TRUE(Parse({"--seeds", "1"}).ok);
  EXPECT_TRUE(Parse({"--seeds", "10000"}).ok);
  for (const char* bad : {"0", "-1", "10001", "three", "2.5"}) {
    const auto result = Parse({"--seeds", bad});
    EXPECT_FALSE(result.ok) << "'" << bad << "'";
    EXPECT_NE(result.error.find("--seeds"), std::string::npos) << bad;
  }
}

TEST(CampaignCliTest, HelpShortCircuitsWithoutError) {
  for (const char* flag : {"--help", "-h"}) {
    const auto result = Parse({flag});
    EXPECT_TRUE(result.ok) << flag;
    EXPECT_TRUE(result.options.show_help) << flag;
    EXPECT_TRUE(result.error.empty()) << flag;
  }
  EXPECT_NE(CampaignUsage().find("wdg_campaign"), std::string::npos);
}

TEST(CampaignCliTest, ScenarioKindNameCoversEveryClass) {
  Scenario s;
  s.fault_free = true;
  EXPECT_STREQ(ScenarioKindName(s), "control");
  s = Scenario{};
  s.benign = true;
  EXPECT_STREQ(ScenarioKindName(s), "benign");
  s = Scenario{};
  s.crash = true;
  EXPECT_STREQ(ScenarioKindName(s), "crash");
  s = Scenario{};
  s.client_visible = true;
  EXPECT_STREQ(ScenarioKindName(s), "client-vis");
  s = Scenario{};
  EXPECT_STREQ(ScenarioKindName(s), "background");
}

// Golden check: exact rendering of the --list table for a fixed catalog. If
// this breaks, the CLI's observable output changed — update deliberately.
TEST(CampaignCliTest, ListOutputMatchesGolden) {
  Scenario control;
  control.name = "baseline";
  control.description = "no fault";
  control.fault_free = true;
  Scenario hang;
  hang.name = "disk.hang";
  hang.description = "I/O wedge on the commit path";
  hang.client_visible = true;

  // Expected layout spelled out cell by cell (widths 26 / 12 / 60, two-space
  // separators) so this stays an independent spec, not a copy of the code.
  const auto pad = [](const std::string& text, size_t width) {
    return text + std::string(width - text.size(), ' ') + "  ";
  };
  const std::string rule =
      std::string(26, '-') + "  " + std::string(12, '-') + "  " +
      std::string(60, '-') + "  \n";
  const std::string golden =
      pad("scenario", 26) + pad("kind", 12) + pad("description", 60) + "\n" +
      rule +
      pad("baseline", 26) + pad("control", 12) + pad("no fault", 60) + "\n" +
      pad("disk.hang", 26) + pad("client-vis", 12) +
      pad("I/O wedge on the commit path", 60) + "\n" +
      rule;
  EXPECT_EQ(FormatScenarioList({control, hang}), golden);
}

// The shipped catalog renders one row per scenario plus header and two rules,
// and every scenario name appears. Keeps the golden above honest against the
// real catalog without freezing the catalog's contents.
TEST(CampaignCliTest, ListCoversTheShippedCatalog) {
  const auto catalog = KvsScenarioCatalog();
  ASSERT_FALSE(catalog.empty());
  const std::string out = FormatScenarioList(catalog);
  size_t lines = 0;
  for (char c : out) {
    lines += (c == '\n') ? 1 : 0;
  }
  EXPECT_EQ(lines, catalog.size() + 3);
  for (const Scenario& s : catalog) {
    EXPECT_NE(out.find(s.name.substr(0, 26)), std::string::npos) << s.name;
  }
}

}  // namespace
}  // namespace wdg
