// Tests for the baseline detectors: heartbeat crash FD, Panorama-style
// client observer, watchdogd-style resource signals, API probe.
#include <gtest/gtest.h>

#include "src/detectors/api_probe.h"
#include "src/detectors/client_observer.h"
#include "src/detectors/heartbeat.h"
#include "src/detectors/resource_signal.h"

namespace wdg {
namespace {

class HeartbeatTest : public ::testing::Test {
 protected:
  HeartbeatTest() : injector_(clock_), net_(clock_, injector_, FastNet()) {}
  static NetOptions FastNet() {
    NetOptions options;
    options.base_latency = Us(20);
    return options;
  }
  RealClock& clock_ = RealClock::Instance();
  FaultInjector injector_;
  SimNet net_;
};

TEST_F(HeartbeatTest, SteadyBeatsKeepNodeHealthy) {
  HeartbeatDetectorOptions options;
  options.suspicion_timeout = Ms(80);
  HeartbeatDetector detector(clock_, net_, options);
  detector.Track("node1");
  detector.Start();
  Endpoint* node = net_.CreateEndpoint("node1");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(node->Send("monitor", "hb", "node1").ok());
    clock_.SleepFor(Ms(20));
  }
  EXPECT_FALSE(detector.Suspects("node1"));
  EXPECT_GE(detector.heartbeats_seen(), 5);
  detector.Stop();
}

TEST_F(HeartbeatTest, SilenceTriggersSuspicion) {
  HeartbeatDetectorOptions options;
  options.suspicion_timeout = Ms(60);
  HeartbeatDetector detector(clock_, net_, options);
  detector.Track("node1");
  detector.Start();
  clock_.SleepFor(Ms(150));
  EXPECT_TRUE(detector.Suspects("node1"));
  ASSERT_TRUE(detector.SuspectTime("node1").has_value());
  detector.Stop();
}

TEST_F(HeartbeatTest, BeatRescindsSuspicion) {
  HeartbeatDetectorOptions options;
  options.suspicion_timeout = Ms(50);
  HeartbeatDetector detector(clock_, net_, options);
  detector.Track("node1");
  detector.Start();
  clock_.SleepFor(Ms(120));
  EXPECT_TRUE(detector.Suspects("node1"));
  Endpoint* node = net_.CreateEndpoint("node1");
  ASSERT_TRUE(node->Send("monitor", "hb", "node1").ok());
  clock_.SleepFor(Ms(40));
  EXPECT_FALSE(detector.Suspects("node1"));
  detector.Stop();
}

TEST_F(HeartbeatTest, UntrackedNodesIgnored) {
  HeartbeatDetector detector(clock_, net_, {});
  detector.Start();
  EXPECT_FALSE(detector.Suspects("stranger"));
  detector.Stop();
}

TEST(ClientObserverTest, HealthyUntilEnoughEvidence) {
  ClientObserver observer(RealClock::Instance());
  observer.ReportFailure(StatusCode::kTimeout);
  observer.ReportFailure(StatusCode::kTimeout);
  // Only two samples < min_samples → still healthy (no hair-trigger).
  EXPECT_EQ(observer.Verdict(), ObserverVerdict::kHealthy);
  observer.ReportFailure(StatusCode::kTimeout);
  EXPECT_EQ(observer.Verdict(), ObserverVerdict::kUnhealthy);
  EXPECT_TRUE(observer.FirstUnhealthyTime().has_value());
}

TEST(ClientObserverTest, MixedEvidenceDegrades) {
  ClientObserverOptions options;
  options.min_samples = 4;
  options.degraded_error_ratio = 0.2;
  options.unhealthy_error_ratio = 0.6;
  ClientObserver observer(RealClock::Instance(), options);
  observer.ReportSuccess();
  observer.ReportSuccess();
  observer.ReportSuccess();
  observer.ReportFailure(StatusCode::kTimeout);
  EXPECT_EQ(observer.Verdict(), ObserverVerdict::kDegraded);
}

TEST(ClientObserverTest, ObserveWrapsOperations) {
  ClientObserver observer(RealClock::Instance());
  EXPECT_TRUE(observer.Observe([] { return Status::Ok(); }).ok());
  EXPECT_FALSE(observer.Observe([] { return IoError("x"); }).ok());
  EXPECT_EQ(observer.samples(), 2);
}

TEST(ClientObserverTest, OldEvidenceAges0ut) {
  ClientObserverOptions options;
  options.window = Ms(30);
  ClientObserver observer(RealClock::Instance(), options);
  observer.ReportFailure(StatusCode::kTimeout);
  observer.ReportFailure(StatusCode::kTimeout);
  observer.ReportFailure(StatusCode::kTimeout);
  EXPECT_EQ(observer.Verdict(), ObserverVerdict::kUnhealthy);
  RealClock::Instance().SleepFor(Ms(60));
  EXPECT_EQ(observer.Verdict(), ObserverVerdict::kHealthy);  // window slid past
}

TEST(ResourceSignalTest, AlarmsAfterConsecutiveViolations) {
  RealClock& clock = RealClock::Instance();
  MetricsRegistry metrics;
  ResourceSignalOptions options;
  options.poll = Ms(5);
  ResourceSignalDetector detector(clock, metrics, options);
  SignalRule rule;
  rule.name = "queue_full";
  rule.metric = "queue_depth";
  rule.healthy = [](double v) { return v < 100; };
  rule.consecutive_needed = 3;
  detector.AddRule(rule);
  detector.Start();
  metrics.GetGauge("queue_depth")->Set(50);
  clock.SleepFor(Ms(40));
  EXPECT_TRUE(detector.Alarms().empty());
  metrics.GetGauge("queue_depth")->Set(500);
  clock.SleepFor(Ms(60));
  detector.Stop();
  ASSERT_FALSE(detector.Alarms().empty());
  EXPECT_EQ(detector.Alarms()[0].rule, "queue_full");
  EXPECT_TRUE(detector.FirstAlarmTime().has_value());
}

TEST(ResourceSignalTest, TransientSpikeDoesNotAlarm) {
  RealClock& clock = RealClock::Instance();
  MetricsRegistry metrics;
  ResourceSignalOptions options;
  options.poll = Ms(5);
  ResourceSignalDetector detector(clock, metrics, options);
  SignalRule rule;
  rule.name = "spike";
  rule.metric = "depth";
  rule.healthy = [](double v) { return v < 100; };
  rule.consecutive_needed = 5;
  detector.AddRule(rule);
  metrics.GetGauge("depth")->Set(500);
  detector.Start();
  clock.SleepFor(Ms(12));  // ~2 polls < 5 needed
  metrics.GetGauge("depth")->Set(10);
  clock.SleepFor(Ms(30));
  detector.Stop();
  EXPECT_TRUE(detector.Alarms().empty());
}

TEST(ResourceSignalTest, UnpublishedMetricReportsUnwiredNotHealthy) {
  // A rule watching a metric nobody exports used to read a freshly-created
  // zero gauge and look permanently green; it must surface as a wiring error.
  RealClock& clock = RealClock::Instance();
  MetricsRegistry metrics;
  ResourceSignalOptions options;
  options.poll = Ms(5);
  ResourceSignalDetector detector(clock, metrics, options);
  SignalRule rule;
  rule.name = "ghost";
  rule.metric = "never_published";
  rule.healthy = [](double v) { return v < 100; };
  detector.AddRule(rule);
  detector.Start();
  clock.SleepFor(Ms(40));
  EXPECT_TRUE(detector.Alarms().empty());
  const Status wiring = detector.WiringStatus();
  EXPECT_EQ(wiring.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(wiring.ToString().find("ghost"), std::string::npos);
  ASSERT_EQ(detector.UnwiredRules().size(), 1u);
  EXPECT_EQ(detector.UnwiredRules()[0], "ghost");
  // The metric appearing later heals the wiring status.
  metrics.GetGauge("never_published")->Set(5);
  clock.SleepFor(Ms(40));
  detector.Stop();
  EXPECT_TRUE(detector.WiringStatus().ok());
  EXPECT_TRUE(detector.UnwiredRules().empty());
}

TEST(ResourceSignalTest, WiredRuleStillAlarmsAlongsideUnwiredOne) {
  RealClock& clock = RealClock::Instance();
  MetricsRegistry metrics;
  ResourceSignalOptions options;
  options.poll = Ms(5);
  ResourceSignalDetector detector(clock, metrics, options);
  SignalRule ghost;
  ghost.name = "ghost";
  ghost.metric = "never_published";
  ghost.healthy = [](double v) { return v < 100; };
  detector.AddRule(ghost);
  SignalRule live;
  live.name = "queue_full";
  live.metric = "queue_depth";
  live.healthy = [](double v) { return v < 100; };
  live.consecutive_needed = 2;
  detector.AddRule(live);
  metrics.GetGauge("queue_depth")->Set(500);
  detector.Start();
  clock.SleepFor(Ms(50));
  detector.Stop();
  ASSERT_FALSE(detector.Alarms().empty());
  EXPECT_EQ(detector.Alarms()[0].rule, "queue_full");
  EXPECT_EQ(detector.UnwiredRules(), std::vector<std::string>{"ghost"});
}

TEST(ApiProbeTest, AlarmsOnPersistentFailure) {
  RealClock& clock = RealClock::Instance();
  std::atomic<bool> healthy{true};
  ApiProbeOptions options;
  options.interval = Ms(10);
  options.consecutive_failures_needed = 2;
  ApiProbeDetector detector(
      clock, [&] { return healthy ? Status::Ok() : TimeoutError("down"); }, options);
  detector.Start();
  clock.SleepFor(Ms(50));
  EXPECT_FALSE(detector.Alarmed());
  healthy = false;
  clock.SleepFor(Ms(80));
  detector.Stop();
  EXPECT_TRUE(detector.Alarmed());
  EXPECT_GE(detector.probes_sent(), 5);
  EXPECT_GE(detector.probes_failed(), 2);
}

TEST(ApiProbeTest, SingleBlipDebounced) {
  RealClock& clock = RealClock::Instance();
  std::atomic<int> calls{0};
  ApiProbeOptions options;
  options.interval = Ms(10);
  options.consecutive_failures_needed = 3;
  ApiProbeDetector detector(
      clock,
      [&] {
        // Fail exactly once, on the second probe.
        return ++calls == 2 ? IoError("blip") : Status::Ok();
      },
      options);
  detector.Start();
  clock.SleepFor(Ms(100));
  detector.Stop();
  EXPECT_FALSE(detector.Alarmed());
}

}  // namespace
}  // namespace wdg
