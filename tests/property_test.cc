// Property-based tests (parameterized gtest): invariants of the fault
// injector, WAL recovery, SSTable integrity, CRC detection, the reducer, and
// the bounded queue, swept over randomized inputs and parameter grids.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/checksum.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/threading.h"
#include "src/fault/fault_injector.h"
#include "src/ir/analysis.h"
#include "src/autowd/reduce.h"
#include "src/kvs/sstable.h"
#include "src/kvs/wal.h"
#include "src/sim/sim_disk.h"

namespace wdg {
namespace {

// ----------------------------------------------------- fault kind contracts

class FaultKindContract : public ::testing::TestWithParam<FaultKind> {};

TEST_P(FaultKindContract, BehavesPerContract) {
  const FaultKind kind = GetParam();
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  FaultSpec spec;
  spec.id = "f";
  spec.site_pattern = "op";
  spec.kind = kind;
  spec.delay = Ms(20);
  injector.Inject(spec);

  if (kind == FaultKind::kHang || kind == FaultKind::kBusyLoop) {
    // Blocking kinds: thread parks until removal; never returns an error.
    std::atomic<bool> done{false};
    std::thread blocked([&] {
      EXPECT_TRUE(injector.Act("op").ok());
      done = true;
    });
    while (injector.parked_thread_count() == 0) {
      std::this_thread::yield();
    }
    EXPECT_FALSE(done.load());
    injector.ClearAll();
    blocked.join();
    EXPECT_TRUE(done.load());
    return;
  }

  std::string payload = "payload-bytes-original";
  const std::string original = payload;
  bool dropped = false;
  const TimeNs start = clock.NowNs();
  const Status status = injector.Act("op", &payload, &dropped);
  const DurationNs took = clock.NowNs() - start;

  switch (kind) {
    case FaultKind::kDelay:
      EXPECT_TRUE(status.ok());
      EXPECT_GE(took, Ms(15));
      EXPECT_EQ(payload, original);
      EXPECT_FALSE(dropped);
      break;
    case FaultKind::kError:
      EXPECT_FALSE(status.ok());
      EXPECT_EQ(payload, original);  // errors never silently mutate data
      EXPECT_FALSE(dropped);
      break;
    case FaultKind::kCorruption:
      EXPECT_TRUE(status.ok());      // corruption is silent
      EXPECT_NE(payload, original);
      EXPECT_EQ(payload.size(), original.size());  // same length, wrong bits
      EXPECT_FALSE(dropped);
      break;
    case FaultKind::kSilentDrop:
      EXPECT_TRUE(status.ok());
      EXPECT_TRUE(dropped);
      break;
    default:
      FAIL() << "unhandled kind";
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FaultKindContract,
                         ::testing::Values(FaultKind::kDelay, FaultKind::kHang,
                                           FaultKind::kError, FaultKind::kCorruption,
                                           FaultKind::kSilentDrop, FaultKind::kBusyLoop),
                         [](const auto& param_info) { return FaultKindName(param_info.param); });

// ------------------------------------------------------------ WAL recovery

class WalRecoveryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalRecoveryProperty, RecoveredRecordsAreAnIntactPrefix) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  SimDisk disk(clock, injector, DiskOptions{.base_latency = 0, .per_kb_latency = 0});
  Rng rng(GetParam());

  kvs::Wal wal(disk, "/wal");
  ASSERT_TRUE(wal.Open().ok());
  std::vector<std::string> written;
  const int count = static_cast<int>(rng.Uniform(1, 20));
  for (int i = 0; i < count; ++i) {
    std::string record;
    const int len = static_cast<int>(rng.Uniform(0, 200));
    for (int b = 0; b < len; ++b) {
      record.push_back(static_cast<char>(rng.Uniform(0, 255)));
    }
    ASSERT_TRUE(wal.Append(record).ok());
    written.push_back(std::move(record));
  }

  // Property 1: clean recovery returns exactly what was written.
  {
    const auto recovery = wal.Recover();
    ASSERT_TRUE(recovery.ok());
    EXPECT_EQ(recovery->records, written);
    EXPECT_EQ(recovery->corrupt_tail_bytes, 0);
  }

  // Property 2: corrupt one random byte; recovery yields an intact PREFIX of
  // the written records (never a mangled or reordered record).
  const auto size = disk.Size("/wal");
  ASSERT_TRUE(size.ok());
  const int64_t flip_at = rng.Uniform(0, *size - 1);
  const auto byte = disk.Read("/wal", flip_at, 1);
  ASSERT_TRUE(byte.ok());
  std::string flipped = *byte;
  flipped[0] = static_cast<char>(flipped[0] ^ 0x20);
  ASSERT_TRUE(disk.Write("/wal", flip_at, flipped).ok());

  const auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok());
  ASSERT_LE(recovery->records.size(), written.size());
  for (size_t i = 0; i < recovery->records.size(); ++i) {
    EXPECT_EQ(recovery->records[i], written[i]) << "record " << i << " not intact";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalRecoveryProperty, ::testing::Range<uint64_t>(1, 13));

// --------------------------------------------------------- SSTable integrity

class SsTableIntegrityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SsTableIntegrityProperty, RoundtripAndAnyFlipDetected) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  SimDisk disk(clock, injector, DiskOptions{.base_latency = 0, .per_kb_latency = 0});
  Rng rng(GetParam());

  std::vector<std::pair<std::string, kvs::MemEntry>> entries;
  const int count = static_cast<int>(rng.Uniform(1, 30));
  std::set<std::string> keys;
  for (int i = 0; i < count; ++i) {
    const std::string key = StrFormat("key-%03lld", static_cast<long long>(rng.Uniform(0, 999)));
    if (!keys.insert(key).second) {
      continue;
    }
    kvs::MemEntry entry;
    entry.tombstone = rng.Bernoulli(0.2);
    if (!entry.tombstone) {
      entry.value = std::string(static_cast<size_t>(rng.Uniform(0, 64)), 'v');
    }
    entries.emplace_back(key, std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  ASSERT_TRUE(kvs::SsTable::Write(disk, "/t", entries).ok());

  // Property 1: load returns exactly what was written.
  const auto loaded = kvs::SsTable::Load(disk, "/t");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), entries.size());
  for (const auto& [key, entry] : entries) {
    EXPECT_EQ(loaded->at(key).value, entry.value);
    EXPECT_EQ(loaded->at(key).tombstone, entry.tombstone);
  }

  // Property 2: flipping any single random byte makes validation fail.
  const auto size = disk.Size("/t");
  ASSERT_TRUE(size.ok());
  for (int trial = 0; trial < 5; ++trial) {
    const int64_t at = rng.Uniform(0, *size - 1);
    disk.MarkBadRange("/t", at, 1);
    EXPECT_FALSE(kvs::SsTable::Validate(disk, "/t").ok())
        << "flip at offset " << at << " undetected";
    disk.ClearBadRanges();
    EXPECT_TRUE(kvs::SsTable::Validate(disk, "/t").ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsTableIntegrityProperty, ::testing::Range<uint64_t>(1, 13));

// ------------------------------------------------------------ CRC detection

class CrcFlipProperty : public ::testing::TestWithParam<int> {};

TEST_P(CrcFlipProperty, SingleBitFlipAlwaysDetected) {
  std::string data = "The quick brown fox jumps over the lazy dog 0123456789";
  const uint32_t clean = Crc32(data);
  const int bit = GetParam();
  data[static_cast<size_t>(bit / 8) % data.size()] ^= static_cast<char>(1 << (bit % 8));
  EXPECT_NE(Crc32(data), clean);
}

INSTANTIATE_TEST_SUITE_P(Bits, CrcFlipProperty, ::testing::Range(0, 64));

// --------------------------------------------------------- reducer invariants

namespace reducer_prop {

// Random acyclic module: f0 is the long-running root with a loop; each
// function calls only higher-numbered functions.
awd::Module RandomModule(uint64_t seed) {
  Rng rng(seed);
  awd::Module module(StrFormat("rand%llu", static_cast<unsigned long long>(seed)));
  const int fn_count = static_cast<int>(rng.Uniform(2, 6));
  const awd::OpKind kinds[] = {awd::OpKind::kIoRead,  awd::OpKind::kIoWrite,
                               awd::OpKind::kNetSend, awd::OpKind::kLockAcquire,
                               awd::OpKind::kCompute, awd::OpKind::kSleep,
                               awd::OpKind::kAlloc,   awd::OpKind::kLockRelease};
  for (int f = 0; f < fn_count; ++f) {
    awd::FunctionBuilder builder(StrFormat("f%d", f), "comp");
    if (f == 0) {
      builder.LongRunning();
      builder.LoopBegin();
    }
    const int op_count = static_cast<int>(rng.Uniform(1, 8));
    for (int i = 0; i < op_count; ++i) {
      if (f + 1 < fn_count && rng.Bernoulli(0.3)) {
        builder.Call(StrFormat("f%lld", static_cast<long long>(rng.Uniform(f + 1, fn_count - 1))));
        continue;
      }
      const awd::OpKind kind = kinds[rng.Uniform(0, 7)];
      builder.Op(kind, StrFormat("site.%lld", static_cast<long long>(rng.Uniform(0, 5))), {"x"});
    }
    if (f == 0) {
      builder.LoopEnd();
    }
    module.AddFunction(builder.Build());
  }
  return module;
}

}  // namespace reducer_prop

class ReducerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReducerProperty, InvariantsHoldOnRandomModules) {
  const awd::Module module = reducer_prop::RandomModule(GetParam());
  const awd::VulnerabilityPolicy policy = awd::VulnerabilityPolicy::Default();
  awd::Reducer reducer(module);
  const awd::ReducedProgram program = reducer.Reduce();

  const awd::CallGraph graph(module);
  const auto reachable = graph.ReachableFrom("f0");

  for (const awd::ReducedFunction& fn : program.functions) {
    std::set<std::pair<awd::OpKind, std::string>> seen;
    for (const awd::ReducedOp& op : fn.ops) {
      // Invariant 1: every retained op is vulnerable under the policy.
      awd::Instr instr;
      instr.kind = op.kind;
      instr.site = op.site;
      EXPECT_TRUE(policy.IsVulnerable(instr)) << awd::OpKindName(op.kind);
      // Invariant 2: no duplicate (kind, site) within one reduced function.
      EXPECT_TRUE(seen.insert({op.kind, op.site}).second);
      // Invariant 3: provenance points into a function reachable from a root.
      EXPECT_EQ(reachable.count(op.origin_function), 1u) << op.origin_function;
      // Invariant 4: the origin instruction exists and matches.
      const awd::Function* origin = module.GetFunction(op.origin_function);
      ASSERT_NE(origin, nullptr);
      const awd::Instr* found = origin->FindInstr(op.origin_instr_id);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found->kind, op.kind);
      EXPECT_EQ(found->site, op.site);
    }
  }

  // Invariant 5: reduction is deterministic.
  const awd::ReducedProgram again = awd::Reducer(module).Reduce();
  ASSERT_EQ(again.functions.size(), program.functions.size());
  for (size_t i = 0; i < program.functions.size(); ++i) {
    ASSERT_EQ(again.functions[i].ops.size(), program.functions[i].ops.size());
    for (size_t j = 0; j < program.functions[i].ops.size(); ++j) {
      EXPECT_EQ(again.functions[i].ops[j].site, program.functions[i].ops[j].site);
      EXPECT_EQ(again.functions[i].ops[j].origin_instr_id,
                program.functions[i].ops[j].origin_instr_id);
    }
  }

  // Invariant 6: disabling dedup never yields FEWER ops.
  awd::ReducerOptions no_dedup;
  no_dedup.dedup_similar = false;
  no_dedup.global_dedup = false;
  const awd::ReducedProgram fat = awd::Reducer(module, no_dedup).Reduce();
  EXPECT_GE(fat.stats.ops_retained, program.stats.ops_retained);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReducerProperty, ::testing::Range<uint64_t>(1, 25));

// ------------------------------------------------------- bounded queue sweep

class QueueCapacityProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(QueueCapacityProperty, NeverExceedsCapacityNeverLosesItems) {
  const size_t capacity = GetParam();
  BoundedQueue<int> queue(capacity);
  std::atomic<int64_t> pushed_sum{0};
  std::atomic<int64_t> popped_sum{0};
  std::atomic<int> popped_count{0};
  constexpr int kItems = 500;

  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) {
      ASSERT_TRUE(queue.Push(i, Sec(10)));
      pushed_sum += i;
      EXPECT_LE(queue.Size(), capacity);
    }
  });
  std::thread consumer([&] {
    while (popped_count.load() < kItems) {
      const auto item = queue.Pop(Sec(10));
      ASSERT_TRUE(item.has_value());
      popped_sum += *item;
      ++popped_count;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
  EXPECT_EQ(queue.Size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, QueueCapacityProperty,
                         ::testing::Values(1, 2, 3, 8, 64, 1024));

// ------------------------------------------------------- site pattern sweep

struct PatternCase {
  const char* pattern;
  const char* site;
  bool matches;
};

class SitePatternProperty : public ::testing::TestWithParam<PatternCase> {};

TEST_P(SitePatternProperty, MatchesAsSpecified) {
  const PatternCase& c = GetParam();
  EXPECT_EQ(SitePatternMatches(c.pattern, c.site), c.matches)
      << c.pattern << " vs " << c.site;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SitePatternProperty,
    ::testing::Values(PatternCase{"*", "", true}, PatternCase{"*", "x.y.z", true},
                      PatternCase{"a.*", "a.", true}, PatternCase{"a.*", "a.b.c", true},
                      PatternCase{"a.*", "a", false}, PatternCase{"a.*", "ab.c", false},
                      PatternCase{"a.b", "a.b", true}, PatternCase{"a.b", "a.b.c", false},
                      PatternCase{"", "", true}, PatternCase{"", "x", false}));

}  // namespace
}  // namespace wdg
