// Tests for the §2 / §5.2 extension features: the classic multi-stage
// WatchdogTimer, failure replay from captured context, and cheap recovery
// (partition quarantine).
#include <gtest/gtest.h>

#include <atomic>

#include "src/autowd/autowatchdog.h"
#include "src/autowd/replay.h"
#include "src/common/strings.h"
#include "src/kvs/client.h"
#include "src/kvs/ir_model.h"
#include "src/kvs/recovery.h"
#include "src/kvs/server.h"
#include "src/watchdog/flag_set.h"
#include "src/supervisor/watchdog_timer.h"

namespace wdg {
namespace {

// ------------------------------------------------------------ watchdog timer

TEST(WatchdogTimerTest, KickingPreventsExpiry) {
  RealClock& clock = RealClock::Instance();
  WatchdogTimerOptions options;
  options.stage_interval = Ms(50);
  WatchdogTimer wdt(clock, options);
  std::atomic<int> fired{0};
  wdt.AddStage("reset", [&] { ++fired; });
  wdt.Start();
  for (int i = 0; i < 10; ++i) {
    clock.SleepFor(Ms(15));
    wdt.Kick();
  }
  wdt.Stop();
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(wdt.kick_count(), 10);
}

TEST(WatchdogTimerTest, StagesFireInOrderOnSilence) {
  RealClock& clock = RealClock::Instance();
  WatchdogTimerOptions options;
  options.stage_interval = Ms(30);
  WatchdogTimer wdt(clock, options);
  std::vector<std::string> order;
  std::mutex mu;
  wdt.AddStage("interrupt", [&] { std::lock_guard<std::mutex> l(mu); order.push_back("interrupt"); });
  wdt.AddStage("fail-safe", [&] { std::lock_guard<std::mutex> l(mu); order.push_back("fail-safe"); });
  wdt.AddStage("reset", [&] { std::lock_guard<std::mutex> l(mu); order.push_back("reset"); });
  wdt.Start();
  clock.SleepFor(Ms(150));  // silence: all three stages due
  wdt.Stop();
  std::lock_guard<std::mutex> l(mu);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "interrupt");
  EXPECT_EQ(order[1], "fail-safe");
  EXPECT_EQ(order[2], "reset");
}

TEST(WatchdogTimerTest, KickRearmsAfterPartialEscalation) {
  RealClock& clock = RealClock::Instance();
  WatchdogTimerOptions options;
  options.stage_interval = Ms(30);
  WatchdogTimer wdt(clock, options);
  std::atomic<int> stage1{0};
  std::atomic<int> stage2{0};
  wdt.AddStage("warn", [&] { ++stage1; });
  wdt.AddStage("reset", [&] { ++stage2; });
  wdt.Start();
  clock.SleepFor(Ms(45));  // stage 1 fires, stage 2 not yet
  EXPECT_GE(wdt.stages_fired(), 1);
  wdt.Kick();              // system recovers
  clock.SleepFor(Ms(20));
  wdt.Stop();
  EXPECT_GE(stage1.load(), 1);
  EXPECT_EQ(stage2.load(), 0);  // escalation was cancelled by the kick
  EXPECT_EQ(wdt.stages_fired(), 0);
}

TEST(WatchdogTimerTest, StagesExhaustOnceUntilKicked) {
  RealClock& clock = RealClock::Instance();
  WatchdogTimerOptions options;
  options.stage_interval = Ms(20);
  WatchdogTimer wdt(clock, options);
  std::atomic<int> resets{0};
  wdt.AddStage("reset", [&] { ++resets; });
  wdt.Start();
  clock.SleepFor(Ms(120));
  wdt.Stop();
  EXPECT_EQ(resets.load(), 1);  // fires once per episode, not per poll
}

// -------------------------------------------------------------- flag set

TEST(FlagSetTest, AllSetOnlyWhenEveryPointReached) {
  FlagSet flags;
  flags.Declare("recv");
  flags.Declare("apply");
  flags.Declare("reply");
  flags.Set("recv");
  flags.Set("apply");
  EXPECT_FALSE(flags.AllSetAndReset());
  EXPECT_EQ(flags.LastMissing(), std::vector<std::string>{"reply"});
  flags.Set("recv");
  flags.Set("apply");
  flags.Set("reply");
  EXPECT_TRUE(flags.AllSetAndReset());
  EXPECT_TRUE(flags.LastMissing().empty());
  // Flags reset each round: nothing carried over.
  EXPECT_FALSE(flags.AllSetAndReset());
}

TEST(FlagSetTest, SetAutoDeclares) {
  FlagSet flags;
  flags.Set("late-added");
  EXPECT_TRUE(flags.IsSet("late-added"));
  EXPECT_EQ(flags.size(), 1u);
  EXPECT_TRUE(flags.AllSetAndReset());
}

TEST(FlagSetTest, GuardsWatchdogTimerKick) {
  // The §2 pattern end-to-end: the loop kicks the WDT only when every
  // important point was reached this round. When half the loop silently
  // stops executing, the kicks stop and the WDT escalates.
  RealClock& clock = RealClock::Instance();
  WatchdogTimerOptions wdt_options;
  wdt_options.stage_interval = Ms(40);
  WatchdogTimer wdt(clock, wdt_options);
  std::atomic<int> resets{0};
  wdt.AddStage("reset", [&] { ++resets; });
  wdt.Start();

  FlagSet flags;
  flags.Declare("ingest");
  flags.Declare("process");
  std::atomic<bool> process_alive{true};
  StopFlag stop;
  JoiningThread loop([&] {
    while (!stop.WaitFor(Ms(10))) {
      flags.Set("ingest");
      if (process_alive.load()) {
        flags.Set("process");  // this half of the loop later "dies"
      }
      if (flags.AllSetAndReset()) {
        wdt.Kick();
      }
    }
  });

  clock.SleepFor(Ms(120));
  EXPECT_EQ(resets.load(), 0);  // healthy: kicks keep flowing
  process_alive = false;        // partial failure inside the loop
  clock.SleepFor(Ms(120));
  stop.Request();
  loop.Join();
  wdt.Stop();
  EXPECT_GE(resets.load(), 1);  // unkicked WDT escalated
}

// ---------------------------------------------------------------- ParseDump

TEST(ParseDumpTest, RoundtripsAllValueTypes) {
  static const auto kCount = ContextKey<int64_t>::Of("count");
  static const auto kRatio = ContextKey<double>::Of("ratio");
  static const auto kFlag = ContextKey<bool>::Of("flag");
  static const auto kName = ContextKey<std::string>::Of("name");
  CheckContext ctx("c");
  ctx.Set(kCount, 42);
  ctx.Set(kRatio, 1.5);
  ctx.Set(kFlag, true);
  ctx.Set(kName, "snapshot-7");
  ctx.MarkReady(1);
  const auto parsed = CheckContext::ParseDump(ctx.Dump());
  EXPECT_EQ(std::get<int64_t>(parsed.at("count")), 42);
  EXPECT_DOUBLE_EQ(std::get<double>(parsed.at("ratio")), 1.5);
  EXPECT_EQ(std::get<bool>(parsed.at("flag")), true);
  EXPECT_EQ(std::get<std::string>(parsed.at("name")), "snapshot-7");
}

TEST(ParseDumpTest, PreservesNumericLookingStrings) {
  // The v1 round-trip bug: an untagged dump of a *string* "1234" parsed back
  // as int64_t. The v2 type tag pins the variant alternative.
  static const auto kKey = ContextKey<std::string>::Of("key");
  static const auto kCount = ContextKey<int64_t>::Of("count");
  CheckContext ctx("c");
  ctx.Set(kKey, "1234");
  ctx.Set(kCount, 1234);
  ctx.MarkReady(1);
  const auto parsed = CheckContext::ParseDump(ctx.Dump());
  EXPECT_EQ(std::get<std::string>(parsed.at("key")), "1234");
  EXPECT_EQ(std::get<int64_t>(parsed.at("count")), 1234);
}

TEST(ParseDumpTest, AcceptsLegacyUntaggedFormat) {
  // Dumps written before the type tag existed still parse (by shape).
  const auto parsed =
      CheckContext::ParseDump("{count=42, ratio=1.5, flag=true, name=snapshot-7}");
  EXPECT_EQ(std::get<int64_t>(parsed.at("count")), 42);
  EXPECT_DOUBLE_EQ(std::get<double>(parsed.at("ratio")), 1.5);
  EXPECT_EQ(std::get<bool>(parsed.at("flag")), true);
  EXPECT_EQ(std::get<std::string>(parsed.at("name")), "snapshot-7");
}

TEST(ParseDumpTest, ToleratesEmptyAndMalformed) {
  EXPECT_TRUE(CheckContext::ParseDump("{}").empty());
  EXPECT_TRUE(CheckContext::ParseDump("").empty());
  const auto parsed = CheckContext::ParseDump("{garbage, =bad, k=v}");
  EXPECT_EQ(parsed.size(), 1u);
  EXPECT_EQ(std::get<std::string>(parsed.at("k")), "v");
}

TEST(ParseDumpTest, RestorePopulatesAndMarksReady) {
  CheckContext ctx("c");
  ctx.Restore(CheckContext::ParseDump("{file=/sst/9, entries=16}"), 123);
  EXPECT_TRUE(ctx.ready());
  EXPECT_EQ(*ctx.Get<std::string>("file"), "/sst/9");
  EXPECT_EQ(*ctx.Get<int64_t>("entries"), 16);
}

// ------------------------------------------------------------------- replay

TEST(ReplayTest, ReproducesAPersistentFault) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  SimDisk disk(clock, injector, DiskOptions{.base_latency = Us(5), .per_kb_latency = 0});
  SimNet net(clock, injector);
  kvs::KvsOptions options;
  options.node_id = "kvs1";
  options.flush_threshold_bytes = 256;
  options.flush_poll = Ms(10);
  kvs::KvsNode node(clock, disk, net, options);
  ASSERT_TRUE(node.Start().ok());

  awd::OpExecutorRegistry registry;
  kvs::RegisterOpExecutors(registry, node);
  WatchdogDriver::Options driver_options;
  driver_options.release_on_stop = [&injector] { injector.ClearAll(); };
  WatchdogDriver driver(clock, driver_options);
  awd::GenerationOptions gen;
  gen.checker.interval = Ms(20);
  gen.checker.timeout = Ms(250);
  awd::Generate(kvs::DescribeIr(node.options()), node.hooks(), registry, driver, gen);
  ASSERT_TRUE(driver.Start().ok());

  kvs::KvsClient client(net, "c", "kvs1");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.Set(StrFormat("k%02d", i), std::string(64, 'x')).ok());
  }
  FaultSpec fault;
  fault.id = "disk";
  fault.site_pattern = "disk.write";
  fault.kind = FaultKind::kError;
  injector.Inject(fault);
  ASSERT_TRUE(driver.WaitForFailure(Sec(3), [](const FailureSignature& sig) {
    return sig.location.op_site == "disk.write";
  }));
  FailureSignature captured;
  for (const auto& sig : driver.Failures()) {
    if (sig.location.op_site == "disk.write") {
      captured = sig;
    }
  }

  // Postmortem: regenerate the program (deterministic) and replay the
  // pinpointed op with the captured context. Fault still active → reproduces.
  const awd::GenerationReport analysis = awd::Analyze(kvs::DescribeIr(node.options()));
  const awd::ReplayResult while_faulty =
      awd::ReplayFailure(captured, analysis.program, registry);
  EXPECT_TRUE(while_faulty.op_found);
  EXPECT_TRUE(while_faulty.reproduced);
  EXPECT_EQ(while_faulty.op_status.code(), captured.code);

  // After the environment recovers, the same replay passes.
  injector.ClearAll();
  const awd::ReplayResult after_fix = awd::ReplayFailure(captured, analysis.program, registry);
  EXPECT_TRUE(after_fix.op_found);
  EXPECT_FALSE(after_fix.reproduced);
  EXPECT_TRUE(after_fix.op_status.ok());

  EXPECT_TRUE(driver.Stop().ok());
  node.Stop();
}

TEST(ReplayTest, MissingOpReportsNotFound) {
  awd::ReducedProgram empty;
  awd::OpExecutorRegistry registry;
  FailureSignature sig;
  sig.location = {"c", "Fn", "mystery.op", 9};
  const awd::ReplayResult result = awd::ReplayFailure(sig, empty, registry);
  EXPECT_FALSE(result.op_found);
  EXPECT_FALSE(result.reproduced);
}

// ----------------------------------------------------------- cheap recovery

TEST(PartitionQuarantineTest, EndToEndCorruptionRecovery) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  SimDisk disk(clock, injector, DiskOptions{.base_latency = Us(5), .per_kb_latency = 0});
  SimNet net(clock, injector);
  kvs::KvsOptions options;
  options.node_id = "kvs1";
  options.flush_threshold_bytes = 256;
  options.flush_poll = Ms(10);
  options.maintenance_poll = Ms(20);
  kvs::KvsNode node(clock, disk, net, options);
  ASSERT_TRUE(node.Start().ok());

  awd::OpExecutorRegistry registry;
  kvs::RegisterOpExecutors(registry, node);
  WatchdogDriver::Options driver_options;
  driver_options.release_on_stop = [&injector] { injector.ClearAll(); };
  WatchdogDriver driver(clock, driver_options);
  awd::GenerationOptions gen;
  gen.checker.interval = Ms(20);
  gen.checker.timeout = Ms(250);
  awd::Generate(kvs::DescribeIr(node.options()), node.hooks(), registry, driver, gen);

  kvs::PartitionQuarantineRecovery recovery(node);
  driver.AddRecoveryAction("kvs.partition", &recovery);
  ASSERT_TRUE(driver.Start().ok());

  kvs::KvsClient client(net, "c", "kvs1");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.Set(StrFormat("k%02d", i), std::string(64, 'x')).ok());
  }
  for (int i = 0; i < 100 && node.partitions().Partitions().empty(); ++i) {
    clock.SleepFor(Ms(10));
  }
  const auto partitions = node.partitions().Partitions();
  ASSERT_FALSE(partitions.empty());
  const std::string victim = partitions.front().path;
  disk.MarkBadRange(victim, 4, 8);  // the media rots under the data

  // Watchdog detects the safety violation and the recovery action fires.
  ASSERT_TRUE(driver.WaitForFailure(Sec(3), [](const FailureSignature& sig) {
    return sig.type == FailureType::kSafetyViolation;
  }));
  for (int i = 0; i < 100 && recovery.recoveries() == 0; ++i) {
    clock.SleepFor(Ms(10));
  }
  EXPECT_GE(recovery.recoveries(), 1);
  EXPECT_FALSE(disk.Exists(victim));                       // moved aside
  EXPECT_TRUE(disk.Exists(victim + ".quarantine"));        // preserved for forensics
  EXPECT_TRUE(node.partitions().ValidateAll().ok());       // system healthy again
  for (const std::string& table : node.index().Tables()) {
    EXPECT_NE(table, victim);  // read path no longer touches the bad table
  }

  EXPECT_TRUE(driver.Stop().ok());
  node.Stop();
}

}  // namespace
}  // namespace wdg
