// Concurrency torture for the Context API v2 hot path, designed to run under
// TSan (-DWDG_SANITIZE=thread; tools/ci.sh runs it in the TSan leg).
//
// N producer threads, each firing its own hook site against ONE shared
// context, each staging an M-key batch. The §3.1 invariant under test:
// checkers only ever observe fully-populated state — a Snapshot() must never
// see a torn batch (some keys from one flush, some from another), and the
// epoch must be monotone.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/strings.h"
#include "src/watchdog/context.h"

namespace wdg {
namespace {

constexpr int kProducers = 8;   // N threads...
constexpr int kKeysPerBatch = 6;  // ...each staging M keys per hook fire

TEST(ContextConcurrencyTest, SnapshotNeverObservesTornBatch) {
  HookSet hooks;
  CheckContext* ctx = hooks.Context("shared_ctx");

  // Per-producer key groups, interned before the hot loops. Producer p is
  // the only writer of its group, and writes the same sequence number to
  // every key in one batch — any snapshot mixing two of p's batches is torn.
  std::vector<std::vector<ContextKey<int64_t>>> keys(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    for (int k = 0; k < kKeysPerBatch; ++k) {
      keys[p].push_back(ContextKey<int64_t>::Of(StrFormat("cc.p%d.k%d", p, k)));
    }
    hooks.Arm(StrFormat("site%d", p), "shared_ctx");
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      HookSite* site = hooks.Site(StrFormat("site%d", p));
      int64_t seq = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        site->Fire([&](CheckContext& c) {
          for (const auto& key : keys[p]) {
            c.Set(key, seq);
          }
          c.MarkReady(seq);
        });
        ++seq;
      }
    });
  }

  std::vector<std::thread> readers;
  std::atomic<int64_t> snapshots{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snapshot = ctx->SnapshotConsistent();
        // Epoch monotonicity across consecutive reads from one thread.
        ASSERT_GE(snapshot.epoch, last_epoch);
        last_epoch = snapshot.epoch;
        // Torn-batch check: within a snapshot, every key of a producer's
        // group carries the same sequence number.
        for (int p = 0; p < kProducers; ++p) {
          int found = 0;
          std::optional<int64_t> expected;
          for (int k = 0; k < kKeysPerBatch; ++k) {
            const auto it = snapshot.values.find(StrFormat("cc.p%d.k%d", p, k));
            if (it == snapshot.values.end()) {
              continue;
            }
            ++found;
            ASSERT_TRUE(std::holds_alternative<int64_t>(it->second));
            const int64_t seq = std::get<int64_t>(it->second);
            if (!expected.has_value()) {
              expected = seq;
            } else {
              ASSERT_EQ(seq, *expected) << "torn batch from producer " << p;
            }
          }
          // A batch lands whole or not at all: never a strict subset.
          ASSERT_TRUE(found == 0 || found == kKeysPerBatch)
              << "partial batch from producer " << p << ": " << found;
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Typed point-reads race the flushes too (stripe-level read path).
  std::thread point_reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int p = 0; p < kProducers; ++p) {
        (void)ctx->Get(keys[p][0]);
      }
    }
  });

  RealClock::Instance().SleepFor(Ms(300));
  stop = true;
  for (auto& t : producers) {
    t.join();
  }
  for (auto& t : readers) {
    t.join();
  }
  point_reader.join();

  EXPECT_GT(snapshots.load(), 50);
  EXPECT_TRUE(ctx->ready());
  // Final state: every group fully populated and internally consistent.
  const auto final_snapshot = ctx->SnapshotConsistent();
  EXPECT_GT(final_snapshot.epoch, 0u);
  for (int p = 0; p < kProducers; ++p) {
    for (int k = 1; k < kKeysPerBatch; ++k) {
      EXPECT_EQ(std::get<int64_t>(
                    final_snapshot.values.at(StrFormat("cc.p%d.k%d", p, k))),
                std::get<int64_t>(
                    final_snapshot.values.at(StrFormat("cc.p%d.k0", p))));
    }
  }
}

TEST(ContextConcurrencyTest, EpochCountsFlushesExactly) {
  CheckContext ctx("c");
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  static const auto kSeq = ContextKey<int64_t>::Of("cc.epoch.seq");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        ctx.Set(kSeq, i);
        ctx.MarkReady(i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ctx.epoch(), static_cast<uint64_t>(kThreads) * kRounds);
}

}  // namespace
}  // namespace wdg
