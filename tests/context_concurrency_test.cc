// Concurrency torture for the Context API v2 hot path, designed to run under
// TSan (-DWDG_SANITIZE=thread; tools/ci.sh runs it in the TSan leg).
//
// N producer threads, each firing its own hook site against ONE shared
// context, each staging an M-key batch. The §3.1 invariant under test:
// checkers only ever observe fully-populated state — a Snapshot() must never
// see a torn batch (some keys from one flush, some from another), and the
// epoch must be monotone.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/strings.h"
#include "src/watchdog/context.h"

namespace wdg {
namespace {

constexpr int kProducers = 8;   // N threads...
constexpr int kKeysPerBatch = 6;  // ...each staging M keys per hook fire

TEST(ContextConcurrencyTest, SnapshotNeverObservesTornBatch) {
  HookSet hooks;
  CheckContext* ctx = hooks.Context("shared_ctx");

  // Per-producer key groups, interned before the hot loops. Producer p is
  // the only writer of its group, and writes the same sequence number to
  // every key in one batch — any snapshot mixing two of p's batches is torn.
  std::vector<std::vector<ContextKey<int64_t>>> keys(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    for (int k = 0; k < kKeysPerBatch; ++k) {
      keys[p].push_back(ContextKey<int64_t>::Of(StrFormat("cc.p%d.k%d", p, k)));
    }
    hooks.Arm(StrFormat("site%d", p), "shared_ctx");
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      HookSite* site = hooks.Site(StrFormat("site%d", p));
      int64_t seq = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        site->Fire([&](CheckContext& c) {
          for (const auto& key : keys[p]) {
            c.Set(key, seq);
          }
          c.MarkReady(seq);
        });
        ++seq;
      }
    });
  }

  std::vector<std::thread> readers;
  std::atomic<int64_t> snapshots{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snapshot = ctx->SnapshotConsistent();
        // Epoch monotonicity across consecutive reads from one thread.
        ASSERT_GE(snapshot.epoch, last_epoch);
        last_epoch = snapshot.epoch;
        // Torn-batch check: within a snapshot, every key of a producer's
        // group carries the same sequence number.
        for (int p = 0; p < kProducers; ++p) {
          int found = 0;
          std::optional<int64_t> expected;
          for (int k = 0; k < kKeysPerBatch; ++k) {
            const auto it = snapshot.values.find(StrFormat("cc.p%d.k%d", p, k));
            if (it == snapshot.values.end()) {
              continue;
            }
            ++found;
            ASSERT_TRUE(std::holds_alternative<int64_t>(it->second));
            const int64_t seq = std::get<int64_t>(it->second);
            if (!expected.has_value()) {
              expected = seq;
            } else {
              ASSERT_EQ(seq, *expected) << "torn batch from producer " << p;
            }
          }
          // A batch lands whole or not at all: never a strict subset.
          ASSERT_TRUE(found == 0 || found == kKeysPerBatch)
              << "partial batch from producer " << p << ": " << found;
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Typed point-reads race the flushes too (stripe-level read path).
  std::thread point_reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int p = 0; p < kProducers; ++p) {
        (void)ctx->Get(keys[p][0]);
      }
    }
  });

  RealClock::Instance().SleepFor(Ms(300));
  stop = true;
  for (auto& t : producers) {
    t.join();
  }
  for (auto& t : readers) {
    t.join();
  }
  point_reader.join();

  EXPECT_GT(snapshots.load(), 50);
  EXPECT_TRUE(ctx->ready());
  // Final state: every group fully populated and internally consistent.
  const auto final_snapshot = ctx->SnapshotConsistent();
  EXPECT_GT(final_snapshot.epoch, 0u);
  for (int p = 0; p < kProducers; ++p) {
    for (int k = 1; k < kKeysPerBatch; ++k) {
      EXPECT_EQ(std::get<int64_t>(
                    final_snapshot.values.at(StrFormat("cc.p%d.k%d", p, k))),
                std::get<int64_t>(
                    final_snapshot.values.at(StrFormat("cc.p%d.k0", p))));
    }
  }
}

// Seqlock torture with every writer shape at once: multi-key flush batches,
// single-value fast-path publishes, and a 2-key batch whose string value
// overflows the inline payload (routing readers through the per-slot locked
// path). Each writer embeds the same sequence number in every value of a
// batch — the overflow writer embeds it in both the string and a sibling
// int — so any torn or mixed-epoch observation is detectable. Run under the
// TSan CI leg: all optimistic reads are atomic-word loads by construction.
TEST(ContextConcurrencyTest, SeqlockTortureMixedWriterShapes) {
  CheckContext ctx("torture");

  static const auto kBatchA = ContextKey<int64_t>::Of("tt.batch.a");
  static const auto kBatchB = ContextKey<int64_t>::Of("tt.batch.b");
  static const auto kBatchC = ContextKey<int64_t>::Of("tt.batch.c");
  static const auto kFast = ContextKey<int64_t>::Of("tt.fast");
  static const auto kBigStr = ContextKey<std::string>::Of("tt.big.str");
  static const auto kBigSeq = ContextKey<int64_t>::Of("tt.big.seq");

  std::atomic<bool> stop{false};

  // Writer 1: 3-key inline batches (stripe-locked flush path).
  std::thread batch_writer([&] {
    int64_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ctx.Set(kBatchA, seq);
      ctx.Set(kBatchB, seq);
      ctx.Set(kBatchC, seq);
      ctx.MarkReady(seq);
      ++seq;
    }
  });

  // Writer 2: single-value batches (wait-free fast path).
  std::thread fast_writer([&] {
    int64_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ctx.Set(kFast, seq);
      ctx.MarkReady(seq);
      ++seq;
    }
  });

  // Writer 3: 2-key batch where the string (> 48 bytes) lands in overflow
  // storage; the trailing digits encode the same seq as the sibling int.
  std::thread overflow_writer([&] {
    const std::string pad(64, 'p');
    int64_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ctx.Set(kBigStr, pad + StrFormat("%lld", static_cast<long long>(seq)));
      ctx.Set(kBigSeq, seq);
      ctx.MarkReady(seq);
      ++seq;
    }
  });

  std::atomic<int64_t> snapshots{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      int64_t last_fast = -1;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snapshot = ctx.SnapshotConsistent();
        const auto a = snapshot.values.find("tt.batch.a");
        if (a != snapshot.values.end()) {
          ASSERT_EQ(std::get<int64_t>(snapshot.values.at("tt.batch.b")),
                    std::get<int64_t>(a->second));
          ASSERT_EQ(std::get<int64_t>(snapshot.values.at("tt.batch.c")),
                    std::get<int64_t>(a->second));
        }
        const auto big = snapshot.values.find("tt.big.str");
        if (big != snapshot.values.end()) {
          const std::string& text = std::get<std::string>(big->second);
          ASSERT_EQ(text.substr(64),
                    StrFormat("%lld", static_cast<long long>(std::get<int64_t>(
                                          snapshot.values.at("tt.big.seq")))));
        }
        // Fast-path point reads: decoded value is never torn and, from one
        // thread, never goes backwards (single writer increments it).
        const auto fast = ctx.Get(kFast);
        if (fast.has_value()) {
          ASSERT_GE(*fast, last_fast);
          last_fast = *fast;
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  RealClock::Instance().SleepFor(Ms(300));
  stop = true;
  batch_writer.join();
  fast_writer.join();
  overflow_writer.join();
  for (auto& t : readers) {
    t.join();
  }

  EXPECT_GT(snapshots.load(), 50);
  const auto stats = ctx.read_stats();
  EXPECT_GT(stats.fastpath_publishes, 0);
  // Fallbacks may or may not trigger under scheduler noise; optimistic
  // successes plus fallbacks must account for every completed snapshot.
  EXPECT_EQ(stats.snapshot_optimistic + stats.snapshot_fallbacks,
            snapshots.load());
}

// The bounded-retry fallback: hold a flush window open (flushes_begun_ !=
// flushes_done_ for the whole call) and SnapshotConsistent must burn its
// retries, take the locked path, and still return a coherent result.
TEST(ContextConcurrencyTest, SnapshotFallsBackUnderPersistentFlushChurn) {
  CheckContext ctx("fallback");
  static const auto kA = ContextKey<int64_t>::Of("fb.a");
  static const auto kB = ContextKey<int64_t>::Of("fb.b");
  ctx.Set(kA, 1);
  ctx.Set(kB, 1);
  ctx.MarkReady(1);

  // Churn writers: two-key batches as fast as they can flush, so snapshot
  // scans keep colliding with open flush windows.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      int64_t seq = 2;
      while (!stop.load(std::memory_order_relaxed)) {
        ctx.Set(kA, seq);
        ctx.Set(kB, seq);
        ctx.MarkReady(seq);
        ++seq;
      }
    });
  }

  int64_t completed = 0;
  const TimeNs deadline = RealClock::Instance().NowNs() + Ms(300);
  while (RealClock::Instance().NowNs() < deadline) {
    const auto snapshot = ctx.SnapshotConsistent();
    ASSERT_EQ(std::get<int64_t>(snapshot.values.at("fb.a")),
              std::get<int64_t>(snapshot.values.at("fb.b")));
    ++completed;
    if (ctx.read_stats().snapshot_fallbacks > 0 && completed > 100) {
      break;  // exercised both the retry burn and the locked path
    }
  }
  stop = true;
  for (auto& t : writers) {
    t.join();
  }
  const auto stats = ctx.read_stats();
  EXPECT_GT(completed, 0);
  EXPECT_GT(stats.snapshot_retries + stats.snapshot_optimistic, 0);
  // Every snapshot completed one way or the other — none hung, none torn.
  EXPECT_EQ(stats.snapshot_optimistic + stats.snapshot_fallbacks, completed);
}

TEST(ContextConcurrencyTest, EpochCountsFlushesExactly) {
  CheckContext ctx("c");
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  static const auto kSeq = ContextKey<int64_t>::Of("cc.epoch.seq");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        ctx.Set(kSeq, i);
        ctx.MarkReady(i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ctx.epoch(), static_cast<uint64_t>(kThreads) * kRounds);
}

}  // namespace
}  // namespace wdg
