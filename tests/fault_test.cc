// Unit tests for the fault injector and fault plans.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/clock.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"

namespace wdg {
namespace {

FaultSpec MakeSpec(std::string id, std::string pattern, FaultKind kind) {
  FaultSpec spec;
  spec.id = std::move(id);
  spec.site_pattern = std::move(pattern);
  spec.kind = kind;
  return spec;
}

TEST(FaultInjectorTest, NoFaultsNoEffect) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  const FaultOutcome outcome = injector.OnSite("disk.write");
  EXPECT_FALSE(outcome.fired);
  EXPECT_EQ(injector.SiteHits("disk.write"), 1);
}

TEST(FaultInjectorTest, ErrorFault) {
  FaultInjector injector(RealClock::Instance());
  FaultSpec spec = MakeSpec("f1", "disk.write", FaultKind::kError);
  spec.error_code = StatusCode::kIoError;
  injector.Inject(spec);
  const Status status = injector.Act("disk.write");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(injector.FireCount("f1"), 1);
  // Other sites untouched.
  EXPECT_TRUE(injector.Act("disk.read").ok());
}

TEST(FaultInjectorTest, PatternMatchesPrefix) {
  FaultInjector injector(RealClock::Instance());
  injector.Inject(MakeSpec("f1", "net.send.*", FaultKind::kError));
  EXPECT_FALSE(injector.Act("net.send.node2").ok());
  EXPECT_TRUE(injector.Act("net.recv.node2").ok());
}

TEST(FaultInjectorTest, DelayFaultSleeps) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  FaultSpec spec = MakeSpec("slow", "disk.write", FaultKind::kDelay);
  spec.delay = Ms(30);
  injector.Inject(spec);
  const TimeNs start = clock.NowNs();
  EXPECT_TRUE(injector.Act("disk.write").ok());
  EXPECT_GE(clock.NowNs() - start, Ms(25));
}

TEST(FaultInjectorTest, HangParksUntilRemoved) {
  FaultInjector injector(RealClock::Instance());
  injector.Inject(MakeSpec("stuck", "net.send.peer", FaultKind::kHang));
  std::atomic<bool> returned{false};
  std::thread blocked([&] {
    injector.Act("net.send.peer");
    returned = true;
  });
  while (injector.parked_thread_count() == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(returned.load());
  injector.Remove("stuck");
  blocked.join();
  EXPECT_TRUE(returned.load());
}

TEST(FaultInjectorTest, ClearAllReleasesEveryone) {
  FaultInjector injector(RealClock::Instance());
  injector.Inject(MakeSpec("h1", "a", FaultKind::kHang));
  injector.Inject(MakeSpec("h2", "b", FaultKind::kBusyLoop));
  std::thread t1([&] { injector.Act("a"); });
  std::thread t2([&] { injector.Act("b"); });
  while (injector.parked_thread_count() < 2) {
    std::this_thread::yield();
  }
  injector.ClearAll();
  t1.join();
  t2.join();
  EXPECT_TRUE(injector.ActiveFaultIds().empty());
}

TEST(FaultInjectorTest, CorruptionMutatesPayload) {
  FaultInjector injector(RealClock::Instance());
  injector.Inject(MakeSpec("rot", "disk.write", FaultKind::kCorruption));
  std::string payload = "pristine data bytes";
  const std::string original = payload;
  EXPECT_TRUE(injector.Act("disk.write", &payload).ok());
  EXPECT_NE(payload, original);
  EXPECT_EQ(payload.size(), original.size());
}

TEST(FaultInjectorTest, SilentDropSignalsDrop) {
  FaultInjector injector(RealClock::Instance());
  injector.Inject(MakeSpec("lost", "disk.append", FaultKind::kSilentDrop));
  bool dropped = false;
  std::string payload = "data";
  EXPECT_TRUE(injector.Act("disk.append", &payload, &dropped).ok());
  EXPECT_TRUE(dropped);
}

TEST(FaultInjectorTest, AfterNHitsDefersFiring) {
  FaultInjector injector(RealClock::Instance());
  FaultSpec spec = MakeSpec("late", "op", FaultKind::kError);
  spec.after_n_hits = 3;
  injector.Inject(spec);
  EXPECT_TRUE(injector.Act("op").ok());
  EXPECT_TRUE(injector.Act("op").ok());
  EXPECT_TRUE(injector.Act("op").ok());
  EXPECT_FALSE(injector.Act("op").ok());
}

TEST(FaultInjectorTest, MaxFiresLimitsFiring) {
  FaultInjector injector(RealClock::Instance());
  FaultSpec spec = MakeSpec("twice", "op", FaultKind::kError);
  spec.max_fires = 2;
  injector.Inject(spec);
  EXPECT_FALSE(injector.Act("op").ok());
  EXPECT_FALSE(injector.Act("op").ok());
  EXPECT_TRUE(injector.Act("op").ok());
  EXPECT_EQ(injector.FireCount("twice"), 2);
}

TEST(FaultInjectorTest, ProbabilityZeroNeverFires) {
  FaultInjector injector(RealClock::Instance());
  FaultSpec spec = MakeSpec("never", "op", FaultKind::kError);
  spec.probability = 0.0;
  injector.Inject(spec);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.Act("op").ok());
  }
}

TEST(FaultInjectorTest, ProbabilityRoughlyRespected) {
  FaultInjector injector(RealClock::Instance(), /*seed=*/99);
  FaultSpec spec = MakeSpec("half", "op", FaultKind::kError);
  spec.probability = 0.5;
  injector.Inject(spec);
  int fails = 0;
  for (int i = 0; i < 1000; ++i) {
    fails += injector.Act("op").ok() ? 0 : 1;
  }
  EXPECT_NEAR(fails, 500, 100);
}

TEST(FaultInjectorTest, ReInjectionReleasesOldWaiters) {
  FaultInjector injector(RealClock::Instance());
  injector.Inject(MakeSpec("h", "op", FaultKind::kHang));
  std::thread blocked([&] { injector.Act("op"); });
  while (injector.parked_thread_count() == 0) {
    std::this_thread::yield();
  }
  // Re-injecting under the same id bumps the epoch — the old waiter drains.
  injector.Inject(MakeSpec("h", "other_site", FaultKind::kHang));
  blocked.join();
  injector.ClearAll();
}

TEST(FaultInjectorTest, CorruptBytesDeterministic) {
  std::string a = "payload payload payload";
  std::string b = a;
  FaultInjector::CorruptBytes(a, 5);
  FaultInjector::CorruptBytes(b, 5);
  EXPECT_EQ(a, b);
  std::string c = "payload payload payload";
  FaultInjector::CorruptBytes(c, 6);
  EXPECT_NE(a, c);  // different salt, different damage (overwhelmingly likely)
}

TEST(FaultPlanTest, SchedulesInjectAndRemove) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  FaultPlan plan(injector, clock);
  plan.InjectAt(Ms(10), MakeSpec("windowed", "op", FaultKind::kError))
      .RemoveAt(Ms(60), "windowed");
  plan.Start();
  EXPECT_TRUE(injector.Act("op").ok());  // before window
  clock.SleepFor(Ms(30));
  EXPECT_FALSE(injector.Act("op").ok());  // inside window
  clock.SleepFor(Ms(60));
  EXPECT_TRUE(injector.Act("op").ok());  // after window
  EXPECT_TRUE(plan.finished());
}

TEST(FaultPlanTest, StopAbortsSchedule) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  FaultPlan plan(injector, clock);
  plan.InjectAt(Sec(30), MakeSpec("far", "op", FaultKind::kError));
  plan.Start();
  plan.Stop();  // must return promptly, not wait 30s
  EXPECT_TRUE(injector.Act("op").ok());
}

}  // namespace
}  // namespace wdg
