// Tests for minizk: DataTree, snapshot serialization, the write pipeline,
// and the full ZOOKEEPER-2201 gray-failure reproduction with the generated
// watchdog racing the baseline signals (§4.2 of the paper).
#include <gtest/gtest.h>

#include <memory>

#include "src/autowd/autowatchdog.h"
#include "src/common/strings.h"
#include "src/minizk/ctx_keys.h"
#include "src/minizk/client.h"
#include "src/minizk/ir_model.h"
#include "src/minizk/server.h"

namespace minizk {
namespace {

TEST(DataTreeTest, CreateSetGetDelete) {
  DataTree tree(wdg::RealClock::Instance());
  ASSERT_TRUE(tree.Create("/app", "root").ok());
  EXPECT_EQ(tree.Create("/app", "dup").code(), wdg::StatusCode::kAlreadyExists);
  ASSERT_TRUE(tree.SetData("/app", "v2").ok());
  const auto node = tree.GetData("/app");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->data, "v2");
  EXPECT_EQ(node->version, 1);
  ASSERT_TRUE(tree.Delete("/app").ok());
  EXPECT_EQ(tree.GetData("/app").status().code(), wdg::StatusCode::kNotFound);
  EXPECT_EQ(tree.SetData("/ghost", "x").code(), wdg::StatusCode::kNotFound);
}

TEST(DataTreeTest, ChildrenAreDirectOnly) {
  DataTree tree(wdg::RealClock::Instance());
  ASSERT_TRUE(tree.Create("/a", "").ok());
  ASSERT_TRUE(tree.Create("/a/b", "").ok());
  ASSERT_TRUE(tree.Create("/a/c", "").ok());
  ASSERT_TRUE(tree.Create("/a/b/d", "").ok());
  const auto children = tree.Children("/a");
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0], "/a/b");
  EXPECT_EQ(children[1], "/a/c");
}

class ZkDiskFixture : public ::testing::Test {
 protected:
  ZkDiskFixture() : injector_(clock_), disk_(clock_, injector_, FastDisk()) {}
  static wdg::DiskOptions FastDisk() {
    wdg::DiskOptions options;
    options.base_latency = 0;
    options.per_kb_latency = 0;
    return options;
  }
  wdg::RealClock& clock_ = wdg::RealClock::Instance();
  wdg::FaultInjector injector_;
  wdg::SimDisk disk_;
};

TEST_F(ZkDiskFixture, SnapshotSerializesAllNodesAndFiresHook) {
  DataTree tree(clock_);
  wdg::HookSet hooks;
  hooks.Arm("serializeNode:2", "snapshot_ctx");
  ASSERT_TRUE(tree.Create("/a", "1").ok());
  ASSERT_TRUE(tree.Create("/b", "2").ok());
  ASSERT_TRUE(tree.SerializeSnapshot(disk_, "/zk/snap", hooks).ok());
  EXPECT_EQ(tree.serialized_count(), 2);
  const auto snap = disk_.ReadAll("/zk/snap");
  ASSERT_TRUE(snap.ok());
  EXPECT_NE(snap->find("/a=1"), std::string::npos);
  EXPECT_NE(snap->find("/b=2"), std::string::npos);
  // The Figure 2 hook fired between the scount bump and writeRecord.
  wdg::CheckContext* ctx = hooks.Context("snapshot_ctx");
  EXPECT_TRUE(ctx->ready());
  EXPECT_EQ(*ctx->Get(minizk::keys::Node()), "/b");  // last node serialized
  EXPECT_EQ(*ctx->Get(minizk::keys::Oa()), "/zk/snap");
}

TEST_F(ZkDiskFixture, SnapshotOverwritesPrevious) {
  DataTree tree(clock_);
  wdg::HookSet hooks;
  ASSERT_TRUE(tree.Create("/a", "1").ok());
  ASSERT_TRUE(tree.SerializeSnapshot(disk_, "/zk/snap", hooks).ok());
  ASSERT_TRUE(tree.SetData("/a", "2").ok());
  ASSERT_TRUE(tree.SerializeSnapshot(disk_, "/zk/snap", hooks).ok());
  const auto snap = disk_.ReadAll("/zk/snap");
  ASSERT_TRUE(snap.ok());
  EXPECT_NE(snap->find("/a=2"), std::string::npos);
  EXPECT_EQ(snap->find("/a=1"), std::string::npos);
}

class ZkClusterTest : public ::testing::Test {
 protected:
  ZkClusterTest()
      : injector_(clock_), disk_(clock_, injector_, FastDisk()),
        net_(clock_, injector_, FastNet()) {}

  ~ZkClusterTest() override {
    injector_.ClearAll();
    if (driver_) {
      driver_->Stop();
    }
    if (leader_) {
      leader_->Stop();
    }
    if (follower_) {
      follower_->Stop();
    }
  }

  static wdg::DiskOptions FastDisk() {
    wdg::DiskOptions options;
    options.base_latency = wdg::Us(5);
    options.per_kb_latency = 0;
    return options;
  }
  static wdg::NetOptions FastNet() {
    wdg::NetOptions options;
    options.base_latency = wdg::Us(20);
    return options;
  }

  void StartCluster(bool with_watchdog) {
    follower_ = std::make_unique<ZkFollower>(clock_, net_, "zk-f1");
    follower_->Start();

    ZkOptions options;
    options.node_id = "zk-leader";
    options.followers = {"zk-f1"};
    options.snapshot_every_n = 4;
    options.ping_interval = wdg::Ms(15);
    leader_ = std::make_unique<ZkNode>(clock_, disk_, net_, options);
    ASSERT_TRUE(leader_->Start().ok());

    if (with_watchdog) {
      RegisterOpExecutors(registry_, *leader_);
      wdg::WatchdogDriver::Options driver_options;
      driver_options.release_on_stop = [this] { injector_.ClearAll(); };
      driver_ = std::make_unique<wdg::WatchdogDriver>(clock_, driver_options);
      awd::GenerationOptions gen;
      gen.checker.interval = wdg::Ms(20);
      gen.checker.timeout = wdg::Ms(250);
      report_ = awd::Generate(DescribeIr(leader_->options()), leader_->hooks(), registry_,
                              *driver_, gen);
      driver_->Start();
    }
  }

  wdg::RealClock& clock_ = wdg::RealClock::Instance();
  wdg::FaultInjector injector_;
  wdg::SimDisk disk_;
  wdg::SimNet net_;
  std::unique_ptr<ZkFollower> follower_;
  std::unique_ptr<ZkNode> leader_;
  awd::OpExecutorRegistry registry_;
  std::unique_ptr<wdg::WatchdogDriver> driver_;
  awd::GenerationReport report_;
};

TEST_F(ZkClusterTest, WritesCommitAndReadBack) {
  StartCluster(/*with_watchdog=*/false);
  ZkClient client(net_, "zc1", "zk-leader", wdg::Sec(2));
  ASSERT_TRUE(client.Create("/cfg", "v1").ok());
  ASSERT_TRUE(client.Set("/cfg", "v2").ok());
  const auto value = client.Get("/cfg");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "v2");
  EXPECT_GE(leader_->processor().committed(), 2);
  EXPECT_GE(follower_->syncs_acked(), 2);
}

TEST_F(ZkClusterTest, FollowerReplicaConvergesViaSync) {
  StartCluster(/*with_watchdog=*/false);
  ZkClient client(net_, "zc1", "zk-leader", wdg::Sec(2));
  ASSERT_TRUE(client.Create("/cfg", "v1").ok());
  ASSERT_TRUE(client.Set("/cfg", "v2").ok());
  ASSERT_TRUE(client.Create("/gone", "x").ok());
  ASSERT_TRUE(client.Delete("/gone").ok());
  // Syncs are applied before the leader acks the write, so the follower's
  // replica is already converged.
  const auto replica = follower_->tree().GetData("/cfg");
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(replica->data, "v2");
  EXPECT_EQ(follower_->tree().GetData("/gone").status().code(),
            wdg::StatusCode::kNotFound);
}

TEST_F(ZkClusterTest, ChildrenListedOverTheWire) {
  StartCluster(/*with_watchdog=*/false);
  ZkClient client(net_, "zc1", "zk-leader", wdg::Sec(2));
  ASSERT_TRUE(client.Create("/app", "").ok());
  ASSERT_TRUE(client.Create("/app/a", "1").ok());
  ASSERT_TRUE(client.Create("/app/b", "2").ok());
  ASSERT_TRUE(client.Create("/app/a/deep", "3").ok());
  const auto children = client.Children("/app");
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 2u);
  EXPECT_EQ((*children)[0], "/app/a");
  EXPECT_EQ((*children)[1], "/app/b");
  const auto empty = client.Children("/app/b");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(ZkClusterTest, SnapshotsHappenEveryN) {
  StartCluster(/*with_watchdog=*/false);
  ZkClient client(net_, "zc1", "zk-leader", wdg::Sec(2));
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(client.Create(wdg::StrFormat("/n%d", i), "data").ok());
  }
  EXPECT_GE(leader_->processor().snapshots_taken(), 2);
  EXPECT_TRUE(disk_.Exists("/zk/zk-leader/snapshot"));
}

TEST_F(ZkClusterTest, AdminCommandsAnswer) {
  StartCluster(/*with_watchdog=*/false);
  ZkClient client(net_, "zc1", "zk-leader", wdg::Sec(1));
  const auto ruok = client.Ruok();
  ASSERT_TRUE(ruok.ok());
  EXPECT_EQ(*ruok, "imok");
  ASSERT_TRUE(client.Create("/x", "1").ok());
  const auto stat = client.Stat();
  ASSERT_TRUE(stat.ok());
  EXPECT_NE(stat->find("nodes=1"), std::string::npos);
}

TEST_F(ZkClusterTest, SessionPingsFlow) {
  StartCluster(/*with_watchdog=*/false);
  clock_.SleepFor(wdg::Ms(150));
  EXPECT_GE(leader_->pings_acked(), 3);
  EXPECT_GE(follower_->pings_acked(), 3);
}

TEST_F(ZkClusterTest, GeneratedWatchdogCoversAllRegions) {
  StartCluster(/*with_watchdog=*/true);
  // ListenerLoop, ProcessorLoop (incl. Figure 2 chain), SessionLoop.
  EXPECT_EQ(report_.program.functions.size(), 3u);
  EXPECT_EQ(report_.ops_without_executor, 0);
  bool snapshot_chain_covered = false;
  for (const auto& fn : report_.program.functions) {
    for (const auto& op : fn.ops) {
      if (op.origin_function == "serializeNode" && op.site == "disk.write") {
        snapshot_chain_covered = true;  // Figure 2's writeRecord survived reduction
      }
    }
  }
  EXPECT_TRUE(snapshot_chain_covered);
}

TEST_F(ZkClusterTest, WatchdogSilentOnHealthyCluster) {
  StartCluster(/*with_watchdog=*/true);
  ZkClient client(net_, "zc1", "zk-leader", wdg::Sec(2));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Create(wdg::StrFormat("/n%d", i), "data").ok());
  }
  clock_.SleepFor(wdg::Ms(400));
  for (const auto& failure : driver_->Failures()) {
    ADD_FAILURE() << "unexpected alarm: " << failure.ToString();
  }
}

// The headline reproduction: ZOOKEEPER-2201.
TEST_F(ZkClusterTest, Zk2201GrayFailureDetectedOnlyByWatchdog) {
  StartCluster(/*with_watchdog=*/true);
  ZkClient client(net_, "zc1", "zk-leader", wdg::Ms(300));
  ASSERT_TRUE(client.Create("/app", "v0").ok());  // healthy commit, contexts ready
  clock_.SleepFor(wdg::Ms(50));

  // "A network issue causes a remote sync to block in a critical section."
  // Exact-site hang: only the leader→follower sync link; heartbeats ride
  // "net.send.zk-f1.hb" and stay healthy.
  wdg::FaultSpec hang;
  hang.id = "zk2201";
  hang.site_pattern = "net.send.zk-f1";
  hang.kind = wdg::FaultKind::kHang;
  injector_.Inject(hang);

  // Trigger a write: the processor thread wedges inside the commit lock.
  EXPECT_EQ(client.Set("/app", "v1").code(), wdg::StatusCode::kTimeout);

  // Gray-failure symptoms: writes hang...
  EXPECT_EQ(client.Set("/app", "v2").code(), wdg::StatusCode::kTimeout);
  // ...while reads and the admin command report a healthy leader...
  EXPECT_TRUE(client.Get("/app").ok());
  const auto ruok = client.Ruok();
  ASSERT_TRUE(ruok.ok());
  EXPECT_EQ(*ruok, "imok");
  // ...and session heartbeats keep flowing.
  const int64_t pings_before = leader_->pings_acked();
  clock_.SleepFor(wdg::Ms(100));
  EXPECT_GT(leader_->pings_acked(), pings_before);

  // The generated watchdog detects the stall and pinpoints the write
  // pipeline's critical section / blocked sync call.
  ASSERT_TRUE(driver_->WaitForFailure(wdg::Sec(3), [](const wdg::FailureSignature& sig) {
    return sig.type == wdg::FailureType::kLivenessTimeout &&
           sig.location.function == "ProcessWrite";
  }));
  bool pinned = false;
  for (const auto& sig : driver_->Failures()) {
    if (sig.location.function == "ProcessWrite") {
      pinned = true;
      EXPECT_EQ(sig.location.component, "zk.sync_processor");
      EXPECT_TRUE(sig.location.op_site == "lock.zk.commit" ||
                  sig.location.op_site == "net.send.zk-f1")
          << sig.ToString();
    }
  }
  EXPECT_TRUE(pinned);

  // Cleanup: release the hang before teardown.
  injector_.ClearAll();
}

TEST_F(ZkClusterTest, RecoveryAfterFaultClearsSilences) {
  StartCluster(/*with_watchdog=*/true);
  ZkClient client(net_, "zc1", "zk-leader", wdg::Ms(300));
  ASSERT_TRUE(client.Create("/app", "v0").ok());

  wdg::FaultSpec hang;
  hang.id = "zk2201";
  hang.site_pattern = "net.send.zk-f1";
  hang.kind = wdg::FaultKind::kHang;
  injector_.Inject(hang);
  (void)client.Set("/app", "v1");  // wedge the processor
  ASSERT_TRUE(driver_->WaitForFailure(wdg::Sec(3)));

  injector_.ClearAll();  // "network recovers"
  clock_.SleepFor(wdg::Ms(300));
  // Writes work again.
  ZkClient retry(net_, "zc2", "zk-leader", wdg::Sec(2));
  EXPECT_TRUE(retry.Set("/app", "v3").ok());
}

}  // namespace
}  // namespace minizk
