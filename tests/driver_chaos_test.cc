// Chaos/soak tier for the adaptive driver: seeded randomized FaultPlan storms
// (hangs, delays, busy loops) against a ~100-checker fleet on the autoscaling
// executor, with random fleet churn layered on top. The point is to prove the
// control loops *converge* under adversarial load, not just that they move:
//
//   - every injected hang/busy-loop is abandoned exactly once (the slot
//     suspends until its drained execution completes, so a long fault window
//     never double-counts);
//   - CHECKER_CRASH and LIVENESS_TIMEOUT signatures still surface through the
//     storm — adaptivity must not cost detection;
//   - after the faults clear and load subsides, the pool scales back to
//     min_workers, thread creation stops, and queue delay stayed bounded;
//   - Stop() joins every thread ever spawned (no leaks, no wedged joins).
//
// Seeded (WDG_CHAOS_SEED overrides) so a failure replays exactly. Runs under
// the TSan CI leg with a bounded runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/watchdog/builtin_checkers.h"
#include "src/watchdog/driver.h"

namespace wdg {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("WDG_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 0));
  }
  return 0x5eed2026ULL;
}

// The chaos tier runs the *sharded* driver: every convergence and isolation
// property below must hold with two independent scheduler domains and batched
// dispatch, not just the classic single-loop configuration.
constexpr int kShards = 2;

WatchdogDriver::Options AdaptiveOptions() {
  WatchdogDriver::Options options;
  options.shards = kShards;
  options.dispatch_batch = 4;
  options.executor.adaptive = true;
  options.executor.workers = 2;
  options.executor.min_workers = 2;
  options.executor.max_workers = 8;
  options.executor.queue_capacity = 512;
  options.executor.scale_cooldown = Ms(80);
  options.executor.scale_down_samples = 2;
  // Budgets on: fast checkers earn short hang deadlines (the floor) instead
  // of waiting out a long static timeout. The floor is generous enough that
  // a healthy trivial body never trips it, even under TSan slowdown.
  options.deadline_budget.enabled = true;
  options.deadline_budget.tail_multiplier = 6.0;
  options.deadline_budget.floor = Ms(60);
  options.deadline_budget.ceiling = Ms(600);
  options.deadline_budget.min_samples = 8;
  return options;
}

CheckerOptions FleetChecker(DurationNs interval, DurationNs timeout,
                            DurationNs initial_delay,
                            bool adaptive_deadline = true) {
  CheckerOptions options;
  options.interval = interval;
  options.timeout = timeout;
  options.initial_delay = initial_delay;
  options.adaptive_deadline = adaptive_deadline;
  return options;
}

// Polls DriverMetrics until `pred` holds; false on timeout.
template <typename Pred>
bool WaitForMetrics(WatchdogDriver& driver, Clock& clock, DurationNs timeout,
                    Pred pred) {
  const TimeNs deadline = clock.NowNs() + timeout;
  while (clock.NowNs() < deadline) {
    if (pred(driver.DriverMetrics())) {
      return true;
    }
    clock.SleepFor(Ms(20));
  }
  return false;
}

TEST(DriverChaosTest, SeededFaultStormConvergesAndIsolates) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE(StrFormat("WDG_CHAOS_SEED=%llu",
                         static_cast<unsigned long long>(seed)));
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock, seed);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);

  WatchdogDriver::Options options = AdaptiveOptions();
  options.release_on_stop = [&injector] { injector.ClearAll(); };
  WatchdogDriver driver(clock, options);

  // --- fleet: 80 healthy probes + 8 hang targets + 4 delay targets
  //            + 2 busy-loop targets + 2 crashers = 96 checkers -------------
  constexpr int kProbes = 80;
  constexpr int kHangs = 8;
  constexpr int kDelays = 4;
  constexpr int kBusies = 2;
  constexpr int kCrashers = 2;
  std::vector<std::string> probe_names;
  for (int i = 0; i < kProbes; ++i) {
    std::string name = StrFormat("probe%02d", i);
    probe_names.push_back(name);
    // Probes pin their static deadline (the documented opt-out) so a TSan
    // scheduling stall can never fake a timeout and skew the exactly-once
    // abandonment accounting below.
    driver.AddChecker(std::make_unique<ProbeChecker>(
        name, "chaos.fleet", [] { return Status::Ok(); },
        FleetChecker(Ms(40), Ms(400), Ms(rng.Uniform(0, 40)),
                     /*adaptive_deadline=*/false)));
  }
  std::vector<std::string> hang_names;
  for (int i = 0; i < kHangs; ++i) {
    std::string name = StrFormat("hang%d", i);
    hang_names.push_back(name);
    const std::string site = StrFormat("chaos.hang.%d", i);
    driver.AddChecker(std::make_unique<MimicChecker>(
        name, "chaos.hang", nullptr,
        [&injector, site](const CheckContext&, MimicChecker&) {
          (void)injector.Act(site);
          return CheckResult::Pass();
        },
        // Short static timeout: a hang must be declared (and abandoned) well
        // inside its fault window even before the latency budget warms up.
        FleetChecker(Ms(25), Ms(60), Ms(rng.Uniform(0, 25)))));
  }
  for (int i = 0; i < kDelays; ++i) {
    const std::string site = StrFormat("chaos.delay.%d", i);
    driver.AddChecker(std::make_unique<MimicChecker>(
        StrFormat("delay%d", i), "chaos.delay", nullptr,
        [&injector, site](const CheckContext&, MimicChecker&) {
          (void)injector.Act(site);
          return CheckResult::Pass();
        },
        FleetChecker(Ms(25), Ms(400), Ms(rng.Uniform(0, 25)))));
  }
  std::vector<std::string> busy_names;
  for (int i = 0; i < kBusies; ++i) {
    std::string name = StrFormat("busy%d", i);
    busy_names.push_back(name);
    const std::string site = StrFormat("chaos.busy.%d", i);
    driver.AddChecker(std::make_unique<MimicChecker>(
        name, "chaos.busy", nullptr,
        [&injector, site](const CheckContext&, MimicChecker&) {
          (void)injector.Act(site);
          return CheckResult::Pass();
        },
        FleetChecker(Ms(25), Ms(60), Ms(rng.Uniform(0, 25)))));
  }
  std::vector<std::string> crash_names;
  for (int i = 0; i < kCrashers; ++i) {
    std::string name = StrFormat("crash%d", i);
    crash_names.push_back(name);
    driver.AddChecker(std::make_unique<ProbeChecker>(
        name, "chaos.crash",
        []() -> Status { throw std::runtime_error("chaos-injected bug"); },
        FleetChecker(Ms(50), Ms(400), Ms(rng.Uniform(0, 50)))));
  }

  // --- randomized storm schedule: one fault window per site, overlapping ---
  FaultPlan plan(injector, clock);
  auto storm = [&](const std::string& site, FaultKind kind, DurationNs delay) {
    FaultSpec spec;
    spec.id = site;
    spec.site_pattern = site;
    spec.kind = kind;
    spec.delay = delay;
    const DurationNs at = Ms(rng.Uniform(150, 450));
    plan.InjectAt(at, spec);
    plan.RemoveAt(at + Ms(rng.Uniform(150, 300)), site);
  };
  for (int i = 0; i < kHangs; ++i) {
    storm(StrFormat("chaos.hang.%d", i), FaultKind::kHang, 0);
  }
  for (int i = 0; i < kDelays; ++i) {
    storm(StrFormat("chaos.delay.%d", i), FaultKind::kDelay, Ms(15));
  }
  for (int i = 0; i < kBusies; ++i) {
    storm(StrFormat("chaos.busy.%d", i), FaultKind::kBusyLoop, 0);
  }

  ASSERT_TRUE(driver.Start().ok());
  plan.Start();

  // Random fleet churn while the storm rages: healthy probes flap on and off
  // (disabled slots must reschedule cleanly on re-enable, even mid-storm).
  std::vector<bool> disabled(kProbes, false);
  const TimeNs churn_end = clock.NowNs() + Ms(900);
  while (clock.NowNs() < churn_end) {
    const int victim = static_cast<int>(rng.Uniform(0, kProbes - 1));
    disabled[victim] = !disabled[victim];
    ASSERT_TRUE(
        driver.TrySetCheckerEnabled(probe_names[victim], !disabled[victim]).ok());
    clock.SleepFor(Ms(30));
  }
  for (int i = 0; i < kProbes; ++i) {
    if (disabled[i]) {
      ASSERT_TRUE(driver.TrySetCheckerEnabled(probe_names[i], true).ok());
      disabled[i] = false;
    }
  }

  // Every hang and busy-loop target must surface as a LIVENESS_TIMEOUT that
  // names the stuck checker; the crashers as CHECKER_CRASH.
  for (const std::string& name : hang_names) {
    EXPECT_TRUE(driver.WaitForFailure(Sec(10), [&name](const FailureSignature& sig) {
      return sig.type == FailureType::kLivenessTimeout && sig.checker_name == name;
    })) << "no liveness signature for " << name;
  }
  for (const std::string& name : busy_names) {
    EXPECT_TRUE(driver.WaitForFailure(Sec(10), [&name](const FailureSignature& sig) {
      return sig.type == FailureType::kLivenessTimeout && sig.checker_name == name;
    })) << "no liveness signature for " << name;
  }
  for (const std::string& name : crash_names) {
    EXPECT_TRUE(driver.WaitForFailure(Sec(10), [&name](const FailureSignature& sig) {
      return sig.type == FailureType::kCheckerCrash && sig.checker_name == name;
    })) << "no crash signature for " << name;
  }

  // Wait out the remainder of the storm, then require convergence: abandoned
  // executions drain (faults were removed on schedule), the autoscaler steers
  // the pool back to min_workers, and the workers actually retire.
  const TimeNs plan_deadline = clock.NowNs() + Sec(10);
  while (!plan.finished() && clock.NowNs() < plan_deadline) {
    clock.SleepFor(Ms(20));
  }
  ASSERT_TRUE(plan.finished());
  ASSERT_EQ(injector.ActiveFaultIds().size(), 0u);
  // Aggregated across shards: every shard's pool must steer back to its own
  // min_workers, so the fleet total converges to shards x min.
  const int fleet_min = kShards * options.executor.min_workers;
  ASSERT_TRUE(WaitForMetrics(driver, clock, Sec(15), [&](const DriverMetricsSnapshot& m) {
    return m.target_workers == fleet_min && m.pool_workers == fleet_min;
  })) << "pools never converged back to min_workers";

  // Quiesce: thread creation must have stopped for good.
  const DriverMetricsSnapshot settled = driver.DriverMetrics();
  clock.SleepFor(Ms(300));
  const DriverMetricsSnapshot after = driver.DriverMetrics();
  EXPECT_EQ(after.threads_spawned, settled.threads_spawned)
      << "threads still being created after quiesce";
  EXPECT_EQ(after.pool_workers, fleet_min);
  ASSERT_EQ(after.shard_views.size(), static_cast<size_t>(kShards));

  // Exactly-once hang isolation: one abandonment (and one timeout) per hung
  // site, no matter how long its fault window lasted — the suspended slot
  // can't re-hang until its drained execution completes.
  EXPECT_EQ(after.workers_abandoned, kHangs + kBusies);
  EXPECT_EQ(after.timeouts, kHangs + kBusies);
  for (const std::string& name : hang_names) {
    EXPECT_EQ(driver.StatsFor(name).timeouts, 1) << name;
  }
  for (const std::string& name : busy_names) {
    EXPECT_EQ(driver.StatsFor(name).timeouts, 1) << name;
  }
  // Delay faults stayed under every inferred budget: latency, not a hang.
  for (int i = 0; i < kDelays; ++i) {
    EXPECT_EQ(driver.StatsFor(StrFormat("delay%d", i)).timeouts, 0);
  }

  // The storm forced the pool to grow, and the growth was given back.
  EXPECT_GE(after.scale_up_events, 1);
  EXPECT_EQ(after.scale_up_events, after.scale_down_events);
  EXPECT_GE(after.workers_retired, after.scale_down_events);
  // Queue delay stayed bounded through the storm (generous: TSan leg).
  EXPECT_LT(after.queue_delay_p99_ns, static_cast<double>(Ms(250)));

  EXPECT_TRUE(driver.Stop().ok());  // release_on_stop clears faults; every join must complete
  EXPECT_EQ(injector.parked_thread_count(), 0);

  // Stats coherence for the whole fleet after the storm.
  for (const std::string& name : driver.CheckerNames()) {
    const CheckerStats stats = driver.StatsFor(name);
    EXPECT_EQ(stats.runs, stats.passes + stats.fails + stats.context_not_ready +
                              stats.timeouts + stats.crashes)
        << name;
  }
}

TEST(DriverChaosTest, AutoscalerGrowsUnderLoadAndShrinksAfterQuiesce) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options = AdaptiveOptions();
  options.executor.max_workers = 6;
  WatchdogDriver driver(clock, options);

  // Demand ~6 worker-equivalents: 24 checkers x 5 ms body / 20 ms interval,
  // split evenly across both shards by explicit affinity so each shard sees
  // ~3 worker-equivalents of pressure and must grow past its min of 2.
  constexpr int kCheckers = 24;
  for (int i = 0; i < kCheckers; ++i) {
    CheckerOptions copts = FleetChecker(Ms(20), Ms(400), Ms(i % 20));
    copts.shard_affinity = i % kShards;
    driver.AddChecker(std::make_unique<ProbeChecker>(
        StrFormat("load%02d", i), "chaos.load",
        [&clock] {
          clock.SleepFor(Ms(5));
          return Status::Ok();
        },
        copts));
  }
  ASSERT_TRUE(driver.Start().ok());

  // Under sustained pressure the autoscaler must leave min_workers behind.
  ASSERT_TRUE(WaitForMetrics(driver, clock, Sec(10), [](const DriverMetricsSnapshot& m) {
    return m.scale_up_events >= 2 && m.pool_workers >= kShards * 2 + 1;
  })) << "autoscalers never grew the pools under saturating load";

  // Load subsides (whole fleet disabled); the pools must give the growth back.
  for (const std::string& name : driver.CheckerNames()) {
    ASSERT_TRUE(driver.TrySetCheckerEnabled(name, false).ok());
  }
  const int fleet_min = kShards * options.executor.min_workers;
  ASSERT_TRUE(WaitForMetrics(driver, clock, Sec(10), [&](const DriverMetricsSnapshot& m) {
    return m.target_workers == fleet_min && m.pool_workers == fleet_min;
  })) << "pools never shrank back to min_workers after quiesce";

  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  EXPECT_GE(metrics.workers_retired, 1);
  EXPECT_EQ(metrics.workers_abandoned, 0);
  EXPECT_LE(metrics.pool_workers, kShards * options.executor.max_workers);
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_TRUE(driver.Failures().empty());
}

}  // namespace
}  // namespace wdg
