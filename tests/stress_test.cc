// Stress and concurrency tests: the driver under a large randomized checker
// population, hooks under concurrent fire, the fault injector under
// concurrent mutation, and kvs under multi-client load with transient faults.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/kvs/client.h"
#include "src/kvs/server.h"
#include "src/watchdog/builtin_checkers.h"
#include "src/watchdog/driver.h"

namespace wdg {
namespace {

TEST(DriverStressTest, FortyRandomizedCheckersSurvive) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  WatchdogDriver::Options options;
  options.dedup_window = Ms(50);
  options.release_on_stop = [&injector] { injector.ClearAll(); };
  WatchdogDriver driver(clock, options);

  // A hang fault some checkers will park on.
  FaultSpec hang;
  hang.id = "h";
  hang.site_pattern = "stress.hang";
  hang.kind = FaultKind::kHang;
  injector.Inject(hang);

  std::atomic<int64_t> bodies{0};
  constexpr int kCheckers = 40;
  for (int i = 0; i < kCheckers; ++i) {
    CheckerOptions checker_options;
    checker_options.interval = Ms(5 + i % 17);
    checker_options.timeout = Ms(60);
    const int behavior = i % 5;
    driver.AddChecker(std::make_unique<MimicChecker>(
        StrFormat("stress_%02d", i), StrFormat("comp%d", i % 7), nullptr,
        [behavior, &bodies, &injector, &clock](const CheckContext&,
                                               MimicChecker& self) -> CheckResult {
          bodies.fetch_add(1);
          switch (behavior) {
            case 0:  // always passes
              return CheckResult::Pass();
            case 1:  // always fails
              return CheckResult::Fail(self.MakeSignature(
                  FailureType::kOperationError, {"comp", "Fn", "op.fail", 1},
                  StatusCode::kIoError, "synthetic"));
            case 2:  // slow but within deadline
              clock.SleepFor(Ms(20));
              return CheckResult::Pass();
            case 3:  // crashes
              throw std::runtime_error("synthetic crash");
            default:  // hangs on the injected fault
              self.SetCurrentOp({"comp", "Fn", "stress.hang", 2});
              injector.Act("stress.hang");
              return CheckResult::Pass();
          }
        },
        checker_options));
  }

  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(600));
  EXPECT_TRUE(driver.Stop().ok());  // must join everything cleanly (release_on_stop frees hangs)

  EXPECT_GT(bodies.load(), 100);
  // Every behavior class produced its expected evidence.
  int64_t passes = 0;
  int64_t fails = 0;
  int64_t crashes = 0;
  int64_t timeouts = 0;
  for (const std::string& name : driver.CheckerNames()) {
    const CheckerStats stats = driver.StatsFor(name);
    passes += stats.passes;
    fails += stats.fails;
    crashes += stats.crashes;
    timeouts += stats.timeouts;
    // Accounting sanity: a run ends in exactly one bucket (or is in flight).
    EXPECT_GE(stats.runs,
              stats.passes + stats.fails + stats.crashes + stats.context_not_ready);
  }
  EXPECT_GT(passes, 0);
  EXPECT_GT(fails, 0);
  EXPECT_GT(crashes, 0);
  EXPECT_GT(timeouts, 0);
  EXPECT_FALSE(driver.Failures().empty());
  EXPECT_GT(driver.deduped_count(), 0);  // repeated synthetic failures deduped
}

TEST(HookStressTest, ConcurrentFireAndSnapshotAreCoherent) {
  HookSet hooks;
  hooks.Arm("site", "ctx");
  HookSite* site = hooks.Site("site");
  CheckContext* ctx = hooks.Context("ctx");
  std::atomic<bool> stop{false};

  // Typed keys interned once, outside the hot loops.
  std::vector<ContextKey<int64_t>> tag_keys;
  std::vector<ContextKey<std::string>> val_keys;
  for (int p = 0; p < 4; ++p) {
    tag_keys.push_back(ContextKey<int64_t>::Of(StrFormat("tag%d", p)));
    val_keys.push_back(ContextKey<std::string>::Of(StrFormat("val%d", p)));
  }

  // 4 producers updating the context through the hook...
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      int64_t i = 0;
      while (!stop.load()) {
        site->Fire([&](CheckContext& c) {
          // Each producer stages a consistent (tag, value) pair; MarkReady
          // flushes the batch atomically with respect to Snapshot().
          c.Set(tag_keys[p], i);
          c.Set(val_keys[p], StrFormat("v%lld", static_cast<long long>(i)));
          c.MarkReady(i);
        });
        ++i;
      }
    });
  }
  // ...while 2 consumers snapshot. Each snapshot must be internally coherent:
  // batched flush means the string value matches the integer tag *exactly* —
  // a torn batch (val trailing tag) would fail here.
  std::vector<std::thread> consumers;
  std::atomic<int64_t> snapshots{0};
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (!stop.load()) {
        const auto snapshot = ctx->Snapshot();
        for (int p = 0; p < 4; ++p) {
          const auto tag = snapshot.find(StrFormat("tag%d", p));
          const auto val = snapshot.find(StrFormat("val%d", p));
          if (tag == snapshot.end() || val == snapshot.end()) {
            continue;
          }
          ASSERT_TRUE(std::holds_alternative<int64_t>(tag->second));
          ASSERT_TRUE(std::holds_alternative<std::string>(val->second));
          EXPECT_EQ(std::get<std::string>(val->second),
                    StrFormat("v%lld", static_cast<long long>(
                                           std::get<int64_t>(tag->second))));
        }
        snapshots.fetch_add(1);
      }
    });
  }
  RealClock::Instance().SleepFor(Ms(200));
  stop = true;
  for (auto& t : producers) {
    t.join();
  }
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_GT(site->fired_count(), 1000);
  EXPECT_GT(snapshots.load(), 100);
}

TEST(InjectorStressTest, ConcurrentSitesAndMutation) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> acts{0};
  std::atomic<int64_t> errors{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < 6; ++w) {
    workers.emplace_back([&, w] {
      const std::string site = StrFormat("site.%d", w % 3);
      while (!stop.load()) {
        std::string payload = "data";
        if (!injector.Act(site, &payload).ok()) {
          errors.fetch_add(1);
        }
        acts.fetch_add(1);
      }
    });
  }
  // Mutator: keeps injecting/removing faults while sites are hot.
  std::thread mutator([&] {
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
      FaultSpec spec;
      spec.id = StrFormat("f%lld", static_cast<long long>(rng.Uniform(0, 4)));
      spec.site_pattern = StrFormat("site.%lld", static_cast<long long>(rng.Uniform(0, 2)));
      spec.kind = rng.Bernoulli(0.5) ? FaultKind::kError : FaultKind::kCorruption;
      injector.Inject(spec);
      clock.SleepFor(Ms(1));
      if (rng.Bernoulli(0.6)) {
        injector.Remove(spec.id);
      }
    }
    injector.ClearAll();
  });
  mutator.join();
  stop = true;
  for (auto& t : workers) {
    t.join();
  }
  EXPECT_GT(acts.load(), 1000);
  EXPECT_GT(errors.load(), 0);  // some faults actually fired
  EXPECT_TRUE(injector.ActiveFaultIds().empty());
}

TEST(KvsStressTest, ConcurrentClientsWithTransientFaults) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock, /*seed=*/3);
  SimDisk disk(clock, injector, DiskOptions{.base_latency = Us(2), .per_kb_latency = 0});
  SimNet net(clock, injector, NetOptions{.base_latency = Us(10), .per_kb_latency = 0,
                                         .drop_probability = 0});
  kvs::KvsOptions options;
  options.node_id = "kvs1";
  options.flush_threshold_bytes = 1024;
  options.flush_poll = Ms(10);
  options.compaction_max_tables = 3;
  options.compaction_poll = Ms(15);
  kvs::KvsNode node(clock, disk, net, options);
  ASSERT_TRUE(node.Start().ok());

  // Low-probability transient write errors; the in-place handler retries once.
  FaultSpec flaky;
  flaky.id = "flaky";
  flaky.site_pattern = "disk.append";
  flaky.kind = FaultKind::kError;
  flaky.probability = 0.05;
  injector.Inject(flaky);

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 80;
  std::vector<std::thread> clients;
  std::atomic<int> committed{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      kvs::KvsClient client(net, StrFormat("client%d", c), "kvs1", Ms(500));
      for (int i = 0; i < kOpsPerClient; ++i) {
        const std::string key = StrFormat("c%d-k%03d", c, i);
        if (client.Set(key, StrFormat("value-%d-%d", c, i)).ok()) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  injector.ClearAll();

  // Every acknowledged write must be readable with the right value.
  EXPECT_GT(committed.load(), kClients * kOpsPerClient / 2);
  kvs::KvsClient reader(net, "reader", "kvs1", Ms(500));
  int verified = 0;
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kOpsPerClient; ++i) {
      const std::string key = StrFormat("c%d-k%03d", c, i);
      // Retry transient RPC timeouts (sanitizer slowdown) so a slow read is
      // not miscounted as a lost write.
      Result<std::string> value = reader.Get(key);
      for (int attempt = 0; !value.ok() && attempt < 3; ++attempt) {
        clock.SleepFor(Ms(20));
        value = reader.Get(key);
      }
      if (value.ok()) {
        EXPECT_EQ(*value, StrFormat("value-%d-%d", c, i));
        ++verified;
      }
    }
  }
  EXPECT_GE(verified, committed.load());  // acked writes are never lost
  node.Stop();
}

}  // namespace
}  // namespace wdg
