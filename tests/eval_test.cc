// Tests for the eval harness: scenario catalog sanity, localization scoring,
// aggregation math, and three representative end-to-end trials (control,
// gray failure, crash).
#include <gtest/gtest.h>

#include "src/eval/campaign.h"
#include "src/eval/fault_matrix.h"
#include "src/eval/scenario.h"
#include "src/eval/table.h"
#include "src/eval/workload.h"

namespace wdg {
namespace {

TEST(ScenarioCatalogTest, CoversTheGrayFailureSpace) {
  const auto catalog = KvsScenarioCatalog();
  EXPECT_GE(catalog.size(), 14u);
  int controls = 0;
  int crashes = 0;
  int background = 0;  // faults invisible to clients — the probe blind spot
  for (const Scenario& s : catalog) {
    controls += s.fault_free ? 1 : 0;
    crashes += s.crash ? 1 : 0;
    if (!s.fault_free && !s.benign && !s.crash && !s.client_visible) {
      ++background;
    }
    if (!s.fault_free && !s.benign && !s.crash) {
      EXPECT_FALSE(s.true_op_site.empty()) << s.name;
      EXPECT_FALSE(s.true_component.empty()) << s.name;
    }
  }
  EXPECT_GE(controls, 2);
  EXPECT_EQ(crashes, 1);
  EXPECT_GE(background, 5);
}

TEST(ScenarioCatalogTest, UniqueNames) {
  const auto catalog = KvsScenarioCatalog();
  std::set<std::string> names;
  for (const Scenario& s : catalog) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate scenario " << s.name;
  }
}

TEST(LocalizationScoringTest, LevelsRankCorrectly) {
  Scenario s;
  s.true_component = "kvs.flusher";
  s.true_function = "FlushMemtable";
  s.true_op_site = "disk.write";
  EXPECT_EQ(ScoreLocalization(s, {"kvs.flusher", "FlushMemtable", "disk.write", 3}),
            LocalizationLevel::kOperation);
  EXPECT_EQ(ScoreLocalization(s, {"kvs.flusher", "FlushMemtable", "disk.fsync", 4}),
            LocalizationLevel::kFunction);
  EXPECT_EQ(ScoreLocalization(s, {"kvs.flusher", "Other", "x", 1}),
            LocalizationLevel::kComponent);
  EXPECT_EQ(ScoreLocalization(s, {"kvs.listener", "Other", "x", 1}),
            LocalizationLevel::kProcess);
}

TEST(AggregateTest, ComputesCompletenessAccuracyLatency) {
  TrialResult fault_trial;
  fault_trial.scenario = "s1";
  fault_trial.fault_free = false;
  DetectorOutcome hit;
  hit.enabled = true;
  hit.detected = true;
  hit.latency = Ms(100);
  hit.localization = LocalizationLevel::kOperation;
  fault_trial.outcomes["wd-mimic"] = hit;
  DetectorOutcome miss;
  miss.enabled = true;
  fault_trial.outcomes["heartbeat"] = miss;

  TrialResult control;
  control.scenario = "control";
  control.fault_free = true;
  DetectorOutcome noisy;
  noisy.enabled = true;
  noisy.false_alarms = 3;
  control.outcomes["heartbeat"] = noisy;
  DetectorOutcome quiet;
  quiet.enabled = true;
  control.outcomes["wd-mimic"] = quiet;

  const auto aggregates = Aggregate({fault_trial, control});
  const DetectorAggregate& mimic = aggregates.at("wd-mimic");
  EXPECT_DOUBLE_EQ(mimic.Completeness(), 1.0);
  EXPECT_DOUBLE_EQ(mimic.Accuracy(), 1.0);
  EXPECT_EQ(mimic.MedianLatency(), Ms(100));
  EXPECT_DOUBLE_EQ(mimic.PinpointRate(LocalizationLevel::kOperation), 1.0);

  const DetectorAggregate& hb = aggregates.at("heartbeat");
  EXPECT_DOUBLE_EQ(hb.Completeness(), 0.0);
  EXPECT_DOUBLE_EQ(hb.Accuracy(), 0.0);  // 0 detections, 3 false alarms
}

TEST(TablePrinterTest, AlignsAndTruncates) {
  TablePrinter table({{"name", 8}, {"value", 5}});
  EXPECT_EQ(table.Row({"short", "1"}), "short     1      ");
  EXPECT_EQ(table.Row({"waytoolongname", "12345678"}), "waytoolo  12345  ");
  EXPECT_NE(table.HeaderRow().find("name"), std::string::npos);
}

Scenario FindScenario(const std::string& name) {
  for (const Scenario& s : KvsScenarioCatalog()) {
    if (s.name == name) {
      return s;
    }
  }
  ADD_FAILURE() << "missing scenario " << name;
  return Scenario{};
}

TrialOptions FastTrial() {
  TrialOptions options;
  options.warmup = Ms(250);
  options.observe = Ms(700);
  return options;
}

TEST(TrialTest, BenignHeartbeatLinkFaultFoolsOnlyTheCrashFD) {
  // The heartbeat path drops, the process is perfectly healthy: the crash FD
  // false-alarms; every intrinsic checker stays silent.
  Scenario benign;
  for (const Scenario& s : KvsScenarioCatalog()) {
    if (s.name == "monitor-link-drop") {
      benign = s;
    }
  }
  ASSERT_TRUE(benign.benign);
  const TrialResult result = RunTrial(benign, FastTrial());
  EXPECT_TRUE(result.fault_free);  // scored like a control
  EXPECT_GE(result.outcomes.at(kDetHeartbeat).false_alarms, 1);
  EXPECT_EQ(result.outcomes.at(kDetMimic).false_alarms, 0);
  EXPECT_EQ(result.outcomes.at(kDetWdProbe).false_alarms, 0);
  EXPECT_EQ(result.outcomes.at(kDetApiProbe).false_alarms, 0);
}

TEST(WorkloadGeneratorTest, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  int low = 0;
  for (int i = 0; i < 2000; ++i) {
    if (WorkloadGenerator::PickKey(rng, 64, 1.2) < 8) {
      ++low;
    }
  }
  EXPECT_GT(low, 1200);  // heavily skewed to the hot head
  Rng rng2(11);
  int low_uniform = 0;
  for (int i = 0; i < 2000; ++i) {
    if (WorkloadGenerator::PickKey(rng2, 64, 0.0) < 8) {
      ++low_uniform;
    }
  }
  EXPECT_NEAR(low_uniform, 250, 120);  // uniform: ~1/8 of picks
}

TEST(TrialTest, ControlRunIsQuietEverywhere) {
  const TrialResult result = RunTrial(FindScenario("control-1"), FastTrial());
  EXPECT_TRUE(result.fault_free);
  EXPECT_GT(result.workload_requests, 20);
  for (const auto& [label, outcome] : result.outcomes) {
    EXPECT_FALSE(outcome.detected) << label;
    EXPECT_EQ(outcome.false_alarms, 0) << label << ": " << outcome.detail;
  }
}

TEST(TrialTest, BackgroundGrayFailureOnlyMimicSees) {
  // Replication link hang: clients keep committing, heartbeats keep beating.
  const TrialResult result = RunTrial(FindScenario("replication-link-hang"), FastTrial());
  const DetectorOutcome& mimic = result.outcomes.at(kDetMimic);
  EXPECT_TRUE(mimic.detected) << mimic.detail;
  EXPECT_GE(mimic.localization, LocalizationLevel::kFunction) << mimic.detail;
  EXPECT_FALSE(result.outcomes.at(kDetHeartbeat).detected);
  EXPECT_FALSE(result.outcomes.at(kDetApiProbe).detected);
  EXPECT_FALSE(result.outcomes.at(kDetObserver).detected);
}

TEST(TrialTest, CrashOnlyExtrinsicDetectorsSee) {
  const TrialResult result = RunTrial(FindScenario("process-crash"), FastTrial());
  EXPECT_FALSE(result.outcomes.at(kDetMimic).detected);  // watchdog died too
  EXPECT_TRUE(result.outcomes.at(kDetHeartbeat).detected);
  EXPECT_TRUE(result.outcomes.at(kDetApiProbe).detected);
}

TEST(FusionTrialTest, FusedColumnsScoredAndQuietOnControl) {
  // One fused control trial: all four fusion columns enabled, none may fire.
  TrialOptions options = FastTrial();
  options.with_signal_suite = true;
  options.with_fusion = true;
  const TrialResult result = RunTrial(FindScenario("control-1"), options);
  for (const char* label :
       {kDetFused, kDetFusedProbeOnly, kDetFusedSignalOnly, kDetFusedMimicOnly}) {
    const DetectorOutcome& outcome = result.outcomes.at(label);
    EXPECT_TRUE(outcome.enabled) << label;
    EXPECT_FALSE(outcome.detected) << label << ": " << outcome.detail;
    EXPECT_EQ(outcome.false_alarms, 0) << label << ": " << outcome.detail;
  }
  EXPECT_EQ(result.fusion_alarms, 0);
  EXPECT_LT(result.fusion_score, 0.35);  // below even the clear threshold
}

TEST(FusionMatrixTest, FusedDominatesSingleFamiliesWithZeroFalsePositives) {
  // The ISSUE acceptance bar, as a regression test on the downscaled matrix:
  // fused detects every fault class, beats-or-ties the best single family on
  // median latency for >= 3/4 of them, and fires nothing on the no-fault
  // column (or anywhere pre-injection).
  FaultMatrixOptions options;
  options.quick = true;  // 1 seed per class; CI's --smoke-fusion shape
  const FaultMatrixResult result = RunFaultMatrix(options);

  EXPECT_EQ(result.fault_classes, 4);
  EXPECT_EQ(result.fused_detected, result.fault_classes)
      << FormatFaultMatrix(result);
  EXPECT_GE(result.dominated_classes, 3) << FormatFaultMatrix(result);
  EXPECT_EQ(result.total_false_positives, 0) << FormatFaultMatrix(result);
  EXPECT_EQ(result.fused_false_positive_rate, 0.0);
  EXPECT_TRUE(result.MeetsAcceptance()) << FormatFaultMatrix(result);

  // The no-fault column exists and every mode stayed silent there.
  int no_fault_cells = 0;
  for (const FaultMatrixCell& cell : result.cells) {
    if (cell.fault_class == "no-fault") {
      ++no_fault_cells;
      EXPECT_EQ(cell.detected, 0) << cell.mode;
      EXPECT_EQ(cell.false_positives, 0) << cell.mode;
    }
  }
  EXPECT_EQ(no_fault_cells, 4);

  // The JSON payload carries the two gated headline metrics.
  const std::string json = result.ToJson();
  EXPECT_NE(json.find("\"benchmark\": \"fusion_matrix\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"fused\""), std::string::npos);
  EXPECT_NE(json.find("detection_latency_ms"), std::string::npos);
  EXPECT_NE(json.find("false_positive_rate"), std::string::npos);
}

TEST(TrialTest, ClientVisibleFaultSeenByProbesAndMimic) {
  const TrialResult result = RunTrial(FindScenario("wal-append-hang"), FastTrial());
  EXPECT_TRUE(result.outcomes.at(kDetMimic).detected)
      << result.outcomes.at(kDetMimic).detail;
  EXPECT_TRUE(result.outcomes.at(kDetApiProbe).detected);
  EXPECT_TRUE(result.outcomes.at(kDetObserver).detected);
  // Mimic pinpoints the op; probes only know "the process is sick".
  EXPECT_EQ(result.outcomes.at(kDetMimic).localization, LocalizationLevel::kOperation);
  EXPECT_EQ(result.outcomes.at(kDetApiProbe).localization, LocalizationLevel::kProcess);
}

}  // namespace
}  // namespace wdg
