// Scale and shutdown behavior of the scheduler/executor split: hundreds of
// checkers must share a small worker pool with bounded queue delay and no
// thread-per-execution explosion; an injected hang must abandon exactly one
// worker (and respawn its replacement); Stop() must join cleanly even while
// the submission queue is saturated. Runs under the TSan CI leg.
#include <gtest/gtest.h>

#include <atomic>

#include "src/common/clock.h"
#include "src/common/strings.h"
#include "src/fault/fault_injector.h"
#include "src/watchdog/builtin_checkers.h"
#include "src/watchdog/driver.h"

namespace wdg {
namespace {

CheckerOptions ScaleChecker(DurationNs initial_delay = 0) {
  CheckerOptions options;
  options.interval = Ms(50);
  options.timeout = Ms(400);
  options.initial_delay = initial_delay;
  return options;
}

TEST(DriverScaleTest, HundredsOfCheckersShareASmallPool) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options;
  options.executor.workers = 4;
  options.executor.queue_capacity = 512;
  WatchdogDriver driver(clock, options);

  constexpr int kCheckers = 220;
  std::atomic<int64_t> total_runs{0};
  for (int i = 0; i < kCheckers; ++i) {
    // Staggered starts spread the fleet across the interval instead of
    // slamming the queue with 220 simultaneous submissions every period.
    driver.AddChecker(std::make_unique<ProbeChecker>(
        StrFormat("p%03d", i), "scale",
        [&total_runs] {
          total_runs.fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        },
        ScaleChecker(/*initial_delay=*/Ms(i % 50))));
  }
  driver.Start();
  clock.SleepFor(Ms(600));
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  driver.Stop();

  // Every checker got scheduled, repeatedly.
  EXPECT_GE(total_runs.load(), kCheckers * 2);
  for (const std::string& name : driver.CheckerNames()) {
    EXPECT_GE(driver.StatsFor(name).runs, 1) << name;
  }
  // The whole fleet ran on the fixed pool: no thread-per-execution growth.
  EXPECT_EQ(metrics.pool_workers, 4);
  EXPECT_EQ(metrics.threads_spawned, 4);
  EXPECT_EQ(metrics.workers_abandoned, 0);
  // Queue delay stays bounded (generous ceiling: this also runs under TSan).
  EXPECT_LT(metrics.queue_delay_p99_ns, static_cast<double>(Ms(300)));
  EXPECT_TRUE(driver.Failures().empty());
}

TEST(DriverScaleTest, InjectedHangAbandonsExactlyOneWorkerAndRespawns) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  FaultSpec hang;
  hang.id = "stuck";
  hang.site_pattern = "scale.op";
  hang.kind = FaultKind::kHang;
  injector.Inject(hang);

  WatchdogDriver::Options options;
  options.executor.workers = 3;
  options.release_on_stop = [&injector] { injector.ClearAll(); };
  WatchdogDriver driver(clock, options);

  CheckerOptions hung_options;
  hung_options.interval = Ms(20);
  hung_options.timeout = Ms(80);
  driver.AddChecker(std::make_unique<MimicChecker>(
      "hung", "scale", nullptr,
      [&injector](const CheckContext&, MimicChecker&) {
        (void)injector.Act("scale.op");
        return CheckResult::Pass();
      },
      hung_options));
  std::atomic<int64_t> healthy_runs{0};
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "healthy", "scale",
      [&healthy_runs] {
        healthy_runs.fetch_add(1, std::memory_order_relaxed);
        return Status::Ok();
      },
      ScaleChecker()));
  driver.Start();

  ASSERT_TRUE(driver.WaitForFailure(Sec(5), [](const FailureSignature& sig) {
    return sig.type == FailureType::kLivenessTimeout && sig.checker_name == "hung";
  }));
  clock.SleepFor(Ms(100));  // let the respawned worker settle in
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  const int64_t runs_at_detect = healthy_runs.load();
  clock.SleepFor(Ms(150));

  // Exactly one worker was parked; one replacement thread restored capacity.
  EXPECT_EQ(metrics.workers_abandoned, 1);
  EXPECT_EQ(metrics.threads_spawned, 3 + 1);
  EXPECT_EQ(metrics.timeouts, 1);
  // The pool kept serving the healthy checker while one worker hangs.
  EXPECT_GT(healthy_runs.load(), runs_at_detect);
  driver.Stop();  // release_on_stop unblocks the hang; joins must not wedge
  EXPECT_EQ(injector.parked_thread_count(), 0);
}

TEST(DriverScaleTest, StopUnderSaturatedQueueJoinsCleanly) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options;
  options.executor.workers = 2;
  options.executor.queue_capacity = 4;  // far smaller than the fleet
  WatchdogDriver driver(clock, options);

  constexpr int kCheckers = 64;
  for (int i = 0; i < kCheckers; ++i) {
    driver.AddChecker(std::make_unique<ProbeChecker>(
        StrFormat("sat%02d", i), "scale",
        [&clock] {
          clock.SleepFor(Ms(2));  // keep workers busy so the queue stays full
          return Status::Ok();
        },
        ScaleChecker()));
  }
  driver.Start();
  clock.SleepFor(Ms(120));
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  driver.Stop();  // must discard queued work and join without deadlock
  EXPECT_FALSE(driver.running());

  // The tiny queue actually pushed back — and backpressure never grew threads.
  EXPECT_GT(metrics.queue_rejections, 0);
  EXPECT_EQ(metrics.threads_spawned, 2);
  // Stats stay coherent: a run either completed with an outcome or was
  // un-counted when the queue was discarded at Stop.
  for (const std::string& name : driver.CheckerNames()) {
    const CheckerStats stats = driver.StatsFor(name);
    EXPECT_EQ(stats.runs, stats.passes + stats.fails + stats.context_not_ready +
                              stats.timeouts + stats.crashes)
        << name;
  }
}

}  // namespace
}  // namespace wdg
