// Scale and shutdown behavior of the scheduler/executor split: hundreds of
// checkers must share a small worker pool with bounded queue delay and no
// thread-per-execution explosion; an injected hang must abandon exactly one
// worker (and respawn its replacement); Stop() must join cleanly even while
// the submission queue is saturated. Also the property suite for the
// histogram-informed deadline-budget inference. Runs under the TSan CI leg.
#include <gtest/gtest.h>

#include <execinfo.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/fault/fault_injector.h"
#include "src/watchdog/builder.h"
#include "src/watchdog/builtin_checkers.h"
#include "src/watchdog/context.h"
#include "src/watchdog/driver.h"

// --- allocation-count guard plumbing --------------------------------------
// Replacing the global allocators is binary-wide; the counter only gates the
// steady-state window in SteadyStateDispatchIsAllocationFree. Counting (not
// forbidding) keeps every other test unaffected. While armed, the first few
// allocations dump raw stacks to stderr so a guard failure names its leak
// instead of just counting it (backtrace_symbols_fd writes straight to the
// fd — no malloc inside the hook).
static std::atomic<int64_t> g_heap_allocs{0};
static std::atomic<int> g_alloc_trace_budget{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (g_alloc_trace_budget.load(std::memory_order_relaxed) > 0) {
    static thread_local bool in_trace = false;
    if (!in_trace &&
        g_alloc_trace_budget.fetch_sub(1, std::memory_order_relaxed) > 0) {
      in_trace = true;
      void* frames[24];
      const int depth = backtrace(frames, 24);
      backtrace_symbols_fd(frames, depth, 2);
      (void)!write(2, "---- alloc in guarded window ----\n", 34);
      in_trace = false;
    }
  }
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) {
    return ptr;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace wdg {
namespace {

// Polls until `name` has at least `runs` completed runs; false on timeout.
bool WaitForStat(WatchdogDriver& driver, Clock& clock, const std::string& name,
                 int64_t runs, DurationNs timeout = Sec(10)) {
  const TimeNs deadline = clock.NowNs() + timeout;
  while (clock.NowNs() < deadline) {
    if (driver.StatsFor(name).runs >= runs) {
      return true;
    }
    clock.SleepFor(Ms(10));
  }
  return false;
}

CheckerOptions ScaleChecker(DurationNs initial_delay = 0) {
  CheckerOptions options;
  options.interval = Ms(50);
  options.timeout = Ms(400);
  options.initial_delay = initial_delay;
  return options;
}

TEST(DriverScaleTest, HundredsOfCheckersShareASmallPool) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options;
  options.executor.workers = 4;
  options.executor.queue_capacity = 512;
  WatchdogDriver driver(clock, options);

  constexpr int kCheckers = 220;
  std::atomic<int64_t> total_runs{0};
  for (int i = 0; i < kCheckers; ++i) {
    // Staggered starts spread the fleet across the interval instead of
    // slamming the queue with 220 simultaneous submissions every period.
    driver.AddChecker(std::make_unique<ProbeChecker>(
        StrFormat("p%03d", i), "scale",
        [&total_runs] {
          total_runs.fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        },
        ScaleChecker(/*initial_delay=*/Ms(i % 50))));
  }
  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(600));
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  EXPECT_TRUE(driver.Stop().ok());

  // Every checker got scheduled, repeatedly.
  EXPECT_GE(total_runs.load(), kCheckers * 2);
  for (const std::string& name : driver.CheckerNames()) {
    EXPECT_GE(driver.StatsFor(name).runs, 1) << name;
  }
  // The whole fleet ran on the fixed pool: no thread-per-execution growth.
  EXPECT_EQ(metrics.pool_workers, 4);
  EXPECT_EQ(metrics.threads_spawned, 4);
  EXPECT_EQ(metrics.workers_abandoned, 0);
  // Queue delay stays bounded (generous ceiling: this also runs under TSan).
  EXPECT_LT(metrics.queue_delay_p99_ns, static_cast<double>(Ms(300)));
  EXPECT_TRUE(driver.Failures().empty());
}

TEST(DriverScaleTest, InjectedHangAbandonsExactlyOneWorkerAndRespawns) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  FaultSpec hang;
  hang.id = "stuck";
  hang.site_pattern = "scale.op";
  hang.kind = FaultKind::kHang;
  injector.Inject(hang);

  WatchdogDriver::Options options;
  options.executor.workers = 3;
  options.release_on_stop = [&injector] { injector.ClearAll(); };
  WatchdogDriver driver(clock, options);

  CheckerOptions hung_options;
  hung_options.interval = Ms(20);
  hung_options.timeout = Ms(80);
  driver.AddChecker(std::make_unique<MimicChecker>(
      "hung", "scale", nullptr,
      [&injector](const CheckContext&, MimicChecker&) {
        (void)injector.Act("scale.op");
        return CheckResult::Pass();
      },
      hung_options));
  std::atomic<int64_t> healthy_runs{0};
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "healthy", "scale",
      [&healthy_runs] {
        healthy_runs.fetch_add(1, std::memory_order_relaxed);
        return Status::Ok();
      },
      ScaleChecker()));
  ASSERT_TRUE(driver.Start().ok());

  ASSERT_TRUE(driver.WaitForFailure(Sec(5), [](const FailureSignature& sig) {
    return sig.type == FailureType::kLivenessTimeout && sig.checker_name == "hung";
  }));
  clock.SleepFor(Ms(100));  // let the respawned worker settle in
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  const int64_t runs_at_detect = healthy_runs.load();
  clock.SleepFor(Ms(150));

  // Exactly one worker was parked; one replacement thread restored capacity.
  EXPECT_EQ(metrics.workers_abandoned, 1);
  EXPECT_EQ(metrics.threads_spawned, 3 + 1);
  EXPECT_EQ(metrics.timeouts, 1);
  // The pool kept serving the healthy checker while one worker hangs.
  EXPECT_GT(healthy_runs.load(), runs_at_detect);
  EXPECT_TRUE(driver.Stop().ok());  // release_on_stop unblocks the hang; joins must not wedge
  EXPECT_EQ(injector.parked_thread_count(), 0);
}

TEST(DriverScaleTest, StopUnderSaturatedQueueJoinsCleanly) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options;
  options.executor.workers = 2;
  options.executor.queue_capacity = 4;  // far smaller than the fleet
  WatchdogDriver driver(clock, options);

  constexpr int kCheckers = 64;
  for (int i = 0; i < kCheckers; ++i) {
    driver.AddChecker(std::make_unique<ProbeChecker>(
        StrFormat("sat%02d", i), "scale",
        [&clock] {
          clock.SleepFor(Ms(2));  // keep workers busy so the queue stays full
          return Status::Ok();
        },
        ScaleChecker()));
  }
  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(120));
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  EXPECT_TRUE(driver.Stop().ok());  // must discard queued work and join without deadlock
  EXPECT_FALSE(driver.running());

  // The tiny queue actually pushed back — and backpressure never grew threads.
  EXPECT_GT(metrics.queue_rejections, 0);
  EXPECT_EQ(metrics.threads_spawned, 2);
  // Stats stay coherent: a run either completed with an outcome or was
  // un-counted when the queue was discarded at Stop.
  for (const std::string& name : driver.CheckerNames()) {
    const CheckerStats stats = driver.StatsFor(name);
    EXPECT_EQ(stats.runs, stats.passes + stats.fails + stats.context_not_ready +
                              stats.timeouts + stats.crashes)
        << name;
  }
}

// --- fleet-scale scheduling: shards, batches, subscription epochs ---------

TEST(DriverShardingTest, ShardedFleetHonorsAffinityAndBoundsWorkers) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options;
  options.shards = 4;
  options.executor.workers = 2;
  options.executor.queue_capacity = 1024;
  options.dispatch_batch = 8;
  WatchdogDriver driver(clock, options);

  constexpr int kCheckers = 400;
  constexpr int kPinned = 100;  // explicit affinity; the rest hash
  std::atomic<int64_t> total_runs{0};
  for (int i = 0; i < kCheckers; ++i) {
    CheckerOptions copts = ScaleChecker(/*initial_delay=*/Ms(i % 50));
    if (i < kPinned) {
      copts.shard_affinity = i % 4;
    }
    driver.AddChecker(std::make_unique<ProbeChecker>(
        StrFormat("sh%03d", i), "scale",
        [&total_runs] {
          total_runs.fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        },
        copts));
  }
  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(600));
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  EXPECT_TRUE(driver.Stop().ok());

  EXPECT_GE(total_runs.load(), kCheckers * 2);
  // Explicit affinity is honored exactly; hashed checkers land on some shard.
  for (int i = 0; i < kPinned; ++i) {
    EXPECT_EQ(driver.ShardOf(StrFormat("sh%03d", i)), i % 4) << i;
  }
  for (int i = kPinned; i < kCheckers; ++i) {
    const int shard = driver.ShardOf(StrFormat("sh%03d", i));
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
  }
  // Worker count is bounded by shards x pool size; every shard pulled weight.
  EXPECT_EQ(metrics.shards, 4);
  EXPECT_LE(metrics.pool_workers, 4 * 2);
  ASSERT_EQ(metrics.shard_views.size(), 4u);
  for (const DriverMetricsSnapshot::ShardView& view : metrics.shard_views) {
    EXPECT_GT(view.dispatched, 0);
  }
  // Batched dispatch amortizes the queue: never more pool tasks than checks.
  EXPECT_GT(metrics.batches_dispatched, 0);
  EXPECT_LE(metrics.batches_dispatched, metrics.executions_dispatched);
  EXPECT_LT(metrics.queue_delay_p99_ns, static_cast<double>(Ms(300)));
  EXPECT_TRUE(driver.Failures().empty());
}

// The churn satellite: deschedule and re-add a 10k-checker fleet mid-run.
// Lazy deletion must hold both invariants: no stale wheel generation ever
// fires a descheduled checker, and superseded entries are reclaimed at pop
// time instead of accumulating (no wheel-slot leaks).
//
// The invariants are fleet-size independent, and sanitizer slowdown on the
// scheduler hot path would blow the ctest budget at the full 10k, so
// sanitized builds churn a smaller fleet.
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__) || \
    __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr int kChurnFleet = 2000;
#else
constexpr int kChurnFleet = 10000;
#endif

TEST(DriverShardingTest, TenThousandCheckerChurnNoStaleFiresNoWheelLeaks) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options;
  options.shards = 8;
  options.executor.workers = 2;
  options.executor.queue_capacity = 4096;
  options.dispatch_batch = 16;
  options.per_checker_metrics = false;  // 10k histograms would swamp the test
  WatchdogDriver driver(clock, options);

  std::atomic<int64_t> total_runs{0};
  std::vector<std::string> names;
  names.reserve(kChurnFleet);
  for (int i = 0; i < kChurnFleet; ++i) {
    CheckerOptions copts;
    copts.interval = Ms(100);
    copts.timeout = Sec(5);
    copts.initial_delay = Ms(i % 100);
    names.push_back(StrFormat("churn%05d", i));
    driver.AddChecker(std::make_unique<ProbeChecker>(
        names.back(), "scale",
        [&total_runs] {
          total_runs.fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        },
        copts));
  }
  ASSERT_TRUE(driver.Start().ok());
  const TimeNs warm_deadline = clock.NowNs() + Sec(60);
  while (driver.DriverMetrics().executions_completed < kChurnFleet &&
         clock.NowNs() < warm_deadline) {
    clock.SleepFor(Ms(20));
  }
  ASSERT_GE(driver.DriverMetrics().executions_completed, kChurnFleet);

  // Deschedule the whole fleet mid-run. Each live wheel entry goes stale and
  // must be dropped by its generation check when it pops.
  for (const std::string& name : names) {
    ASSERT_TRUE(driver.TrySetCheckerEnabled(name, false).ok());
  }
  clock.SleepFor(Ms(400));  // > interval + max stagger: every entry has popped
  const int64_t frozen = total_runs.load();
  const DriverMetricsSnapshot descheduled = driver.DriverMetrics();
  clock.SleepFor(Ms(300));
  // No stale generation fired: the descheduled fleet is completely silent...
  EXPECT_EQ(total_runs.load(), frozen);
  // ...and the wheel reclaimed all 10k entries instead of leaking them.
  EXPECT_EQ(descheduled.wheel_entries, 0u);

  // Re-add everyone; the fleet must come back at full strength.
  for (const std::string& name : names) {
    ASSERT_TRUE(driver.TrySetCheckerEnabled(name, true).ok());
  }
  const int64_t completed_before = driver.DriverMetrics().executions_completed;
  const TimeNs resumed_deadline = clock.NowNs() + Sec(60);
  while (driver.DriverMetrics().executions_completed < completed_before + kChurnFleet &&
         clock.NowNs() < resumed_deadline) {
    clock.SleepFor(Ms(20));
  }
  const DriverMetricsSnapshot resumed = driver.DriverMetrics();
  EXPECT_GE(resumed.executions_completed, completed_before + kChurnFleet);
  // At most one live entry per checker: re-adding did not duplicate schedules.
  EXPECT_LE(resumed.wheel_entries, static_cast<size_t>(kChurnFleet));
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_TRUE(driver.Failures().empty());
}

TEST(DriverShardingTest, SubscriptionEpochsSkipDormantCheckers) {
  RealClock& clock = RealClock::Instance();
  static const auto kProgress = ContextKey<int64_t>::Of("scale.sub.progress");
  CheckContext ctx("scale_sub_ctx");
  ctx.Set(kProgress, 0);
  ctx.MarkReady(1);

  WatchdogDriver::Options options;
  options.executor.workers = 2;
  WatchdogDriver driver(clock, options);

  std::atomic<int64_t> body_runs{0};
  ASSERT_TRUE(CheckerBuilder("dormant")
                  .Component("scale.sub")
                  .Interval(Ms(20))
                  .Deadline(Ms(400))
                  .WithContext(&ctx)
                  .SubscribeKey(kProgress)
                  .Mimic([&body_runs](const CheckContext&, MimicChecker&) {
                    body_runs.fetch_add(1, std::memory_order_relaxed);
                    return CheckResult::Pass();
                  })
                  .RegisterWith(driver)
                  .ok());
  ASSERT_TRUE(driver.Start().ok());

  // Dormant component: the subscribed key never advances, so after the
  // baseline run every scheduled interval is skipped before dispatch.
  clock.SleepFor(Ms(300));
  const int64_t dormant_runs = body_runs.load();
  EXPECT_LE(dormant_runs, 2);
  const DriverMetricsSnapshot dormant = driver.DriverMetrics();
  EXPECT_GE(dormant.skipped_unchanged, 5);
  EXPECT_GE(driver.StatsFor("dormant").skipped_unchanged, 5);

  // The component publishes progress: the next due tick runs the body again.
  ctx.Set(kProgress, 1);
  ctx.MarkReady(2);  // Set only stages; the publish is what bumps the epoch
  const TimeNs resume_deadline = clock.NowNs() + Sec(5);
  while (body_runs.load() <= dormant_runs && clock.NowNs() < resume_deadline) {
    clock.SleepFor(Ms(5));
  }
  EXPECT_GT(body_runs.load(), dormant_runs);
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_TRUE(driver.Failures().empty());
}

TEST(DriverShardingTest, BatchHangAbandonsOnceAndRedispatchesSiblings) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  FaultSpec hang;
  hang.id = "stuck";
  hang.site_pattern = "batch.op";
  hang.kind = FaultKind::kHang;
  injector.Inject(hang);

  WatchdogDriver::Options options;
  options.dispatch_batch = 8;
  options.executor.workers = 2;
  options.release_on_stop = [&injector] { injector.ClearAll(); };
  WatchdogDriver driver(clock, options);

  CheckerOptions hung_options;
  hung_options.interval = Ms(20);
  hung_options.timeout = Ms(80);
  hung_options.shard_affinity = 0;
  driver.AddChecker(std::make_unique<MimicChecker>(
      "hung", "batch", nullptr,
      [&injector](const CheckContext&, MimicChecker&) {
        (void)injector.Act("batch.op");
        return CheckResult::Pass();
      },
      hung_options));
  constexpr int kSiblings = 7;
  std::atomic<int64_t> sibling_runs{0};
  for (int i = 0; i < kSiblings; ++i) {
    CheckerOptions copts;
    copts.interval = Ms(20);
    copts.timeout = Ms(400);
    copts.shard_affinity = 0;  // co-located so they share the hung batch
    driver.AddChecker(std::make_unique<ProbeChecker>(
        StrFormat("sib%d", i), "batch",
        [&sibling_runs] {
          sibling_runs.fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        },
        copts));
  }
  ASSERT_TRUE(driver.Start().ok());

  ASSERT_TRUE(driver.WaitForFailure(Sec(5), [](const FailureSignature& sig) {
    return sig.type == FailureType::kLivenessTimeout && sig.checker_name == "hung";
  }));
  // Siblings cancelled out of the abandoned batch re-dispatch on the
  // replacement worker: they keep accruing runs while the hang drains.
  const int64_t runs_at_detect = sibling_runs.load();
  clock.SleepFor(Ms(200));
  EXPECT_GT(sibling_runs.load(), runs_at_detect);
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  EXPECT_EQ(metrics.workers_abandoned, 1);
  EXPECT_EQ(metrics.timeouts, 1);
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_EQ(injector.parked_thread_count(), 0);
  // Exactly-once accounting survives batching: every counted run resolved to
  // exactly one outcome; cancelled siblings were un-counted, never dropped.
  for (const std::string& name : driver.CheckerNames()) {
    const CheckerStats stats = driver.StatsFor(name);
    EXPECT_EQ(stats.runs, stats.passes + stats.fails + stats.context_not_ready +
                              stats.timeouts + stats.crashes)
        << name;
  }
}

// A probe/signal body can subscribe to context keys too (the context is
// subscription-only there): a dormant signal checker is skipped before
// dispatch exactly like a dormant mimic.
TEST(DriverShardingTest, SubscriptionEpochsSkipDormantSignalCheckers) {
  RealClock& clock = RealClock::Instance();
  static const auto kDepth = ContextKey<int64_t>::Of("scale.sub.sig_depth");
  CheckContext ctx("scale_sub_sig_ctx");
  ctx.Set(kDepth, 0);
  ctx.MarkReady(1);

  WatchdogDriver::Options options;
  options.executor.workers = 2;
  WatchdogDriver driver(clock, options);

  std::atomic<int64_t> samples{0};
  ASSERT_TRUE(CheckerBuilder("dormant-signal")
                  .Component("scale.sub")
                  .Interval(Ms(20))
                  .Deadline(Ms(400))
                  .WithContext(&ctx)
                  .SubscribeKey(kDepth)
                  .Signal(
                      "queue_depth",
                      [&samples] {
                        samples.fetch_add(1, std::memory_order_relaxed);
                        return 0.0;
                      },
                      [](double value) { return value < 100.0; })
                  .RegisterWith(driver)
                  .ok());
  ASSERT_TRUE(driver.Start().ok());

  // Dormant component: the subscribed key never advances, so after the
  // baseline sample every scheduled interval is skipped before dispatch.
  clock.SleepFor(Ms(300));
  const int64_t dormant_samples = samples.load();
  EXPECT_LE(dormant_samples, 2);
  EXPECT_GE(driver.DriverMetrics().skipped_unchanged, 5);
  EXPECT_GE(driver.StatsFor("dormant-signal").skipped_unchanged, 5);

  // The component publishes progress: the signal samples again.
  ctx.Set(kDepth, 1);
  ctx.MarkReady(2);
  const TimeNs resume_deadline = clock.NowNs() + Sec(5);
  while (samples.load() <= dormant_samples && clock.NowNs() < resume_deadline) {
    clock.SleepFor(Ms(5));
  }
  EXPECT_GT(samples.load(), dormant_samples);
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_TRUE(driver.Failures().empty());
}

// Work-stealing preserves hang isolation: a batch stolen by an idle sibling
// shard that then hangs is abandoned exactly once — on the STEALING shard's
// pool, where it actually ran — and its cancelled siblings re-dispatch.
TEST(DriverShardingTest, StolenBatchHangAbandonsOnceOnTheStealingShard) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  FaultSpec hang;
  hang.id = "stuck";
  hang.site_pattern = "steal.op";
  hang.kind = FaultKind::kHang;
  injector.Inject(hang);

  WatchdogDriver::Options options;
  options.shards = 2;
  options.executor.workers = 1;
  options.dispatch_batch = 4;
  options.max_sleep = Ms(20);  // the idle thief polls for steals frequently
  options.work_stealing = true;
  // Releasing the plug here (not only at the end of the test body) keeps an
  // early ASSERT exit from wedging Stop() on the never-returning plug.
  std::atomic<bool> plug_started{false};
  std::atomic<bool> plug_release{false};
  options.release_on_stop = [&injector, &plug_release] {
    injector.ClearAll();
    plug_release.store(true, std::memory_order_release);
  };
  WatchdogDriver driver(clock, options);

  // The plug occupies shard 0's only worker for the whole test, so the hung
  // batch (due later) can only ever execute via a shard-1 steal.
  CheckerOptions plug_options;
  plug_options.interval = Sec(10);
  plug_options.timeout = Sec(30);
  plug_options.shard_affinity = 0;
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "plug", "steal",
      [&plug_started, &plug_release] {
        plug_started.store(true, std::memory_order_release);
        while (!plug_release.load(std::memory_order_acquire)) {
          RealClock::Instance().SleepFor(Ms(1));
        }
        return Status::Ok();
      },
      plug_options));
  // Shard 1's worker idles at Start(), and on a one-core box its scheduler
  // can win the race and steal the PLUG's batch before shard 0's own worker
  // is even scheduled — inverting the whole setup. This occupier keeps shard
  // 1 busy (no idle worker => no stealing) exactly until the plug is running
  // on its home shard, then gets out of the way.
  CheckerOptions occupier_options;
  occupier_options.interval = Sec(10);
  occupier_options.timeout = Sec(30);
  occupier_options.shard_affinity = 1;
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "occupier", "steal",
      [&plug_started, &plug_release] {
        while (!plug_started.load(std::memory_order_acquire) &&
               !plug_release.load(std::memory_order_acquire)) {
          RealClock::Instance().SleepFor(Ms(1));
        }
        return Status::Ok();
      },
      occupier_options));

  CheckerOptions hung_options;
  hung_options.interval = Ms(20);
  hung_options.timeout = Ms(80);
  hung_options.initial_delay = Ms(100);  // after the plug owns the worker
  hung_options.shard_affinity = 0;
  driver.AddChecker(std::make_unique<MimicChecker>(
      "hung", "steal", nullptr,
      [&injector](const CheckContext&, MimicChecker&) {
        (void)injector.Act("steal.op");
        return CheckResult::Pass();
      },
      hung_options));
  constexpr int kSiblings = 3;
  std::atomic<int64_t> sibling_runs{0};
  for (int i = 0; i < kSiblings; ++i) {
    CheckerOptions copts;
    copts.interval = Ms(20);
    copts.timeout = Ms(400);
    copts.initial_delay = Ms(100);  // same due tick as "hung": one batch
    copts.shard_affinity = 0;
    driver.AddChecker(std::make_unique<ProbeChecker>(
        StrFormat("sib%d", i), "steal",
        [&sibling_runs] {
          sibling_runs.fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        },
        copts));
  }
  ASSERT_TRUE(driver.Start().ok());

  // The plug must be running on its home pool (shard 0) before anything else
  // is due — verify rather than assume, so the scenario can't silently
  // invert. Poll: the occupier drains off shard 1 within a few ms of the
  // plug starting.
  const TimeNs plug_deadline = clock.NowNs() + Sec(5);
  bool plug_home = false;
  while (clock.NowNs() < plug_deadline) {
    if (plug_started.load(std::memory_order_acquire)) {
      const DriverMetricsSnapshot at_plug = driver.DriverMetrics();
      if (at_plug.shard_views[0].busy == 1 && at_plug.shard_views[1].busy == 0) {
        plug_home = true;
        break;
      }
    }
    clock.SleepFor(Ms(2));
  }
  ASSERT_TRUE(plug_home);

  ASSERT_TRUE(driver.WaitForFailure(Sec(5), [](const FailureSignature& sig) {
    return sig.type == FailureType::kLivenessTimeout && sig.checker_name == "hung";
  }));
  const int64_t runs_at_detect = sibling_runs.load();
  clock.SleepFor(Ms(300));
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();

  // The hung batch could only execute via a steal — and its abandon landed on
  // the stealing shard's pool, exactly once. The home shard's worker (still
  // plugged) was never parked.
  EXPECT_GE(metrics.batches_stolen, 1);
  EXPECT_GE(metrics.shard_views[1].batches_stolen, 1);
  EXPECT_EQ(metrics.shard_views[1].workers_abandoned, 1);
  EXPECT_EQ(metrics.shard_views[0].workers_abandoned, 0);
  EXPECT_EQ(metrics.workers_abandoned, 1);
  EXPECT_EQ(metrics.timeouts, 1);
  // Cancelled siblings re-dispatched (stolen again by shard 1's replacement
  // worker) and kept accruing runs while the hang drains.
  EXPECT_GT(sibling_runs.load(), runs_at_detect);

  plug_release.store(true, std::memory_order_release);
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_EQ(injector.parked_thread_count(), 0);
  // Exactly-once accounting survives the steal: every counted run resolved to
  // exactly one outcome; cancelled siblings were un-counted, never dropped.
  for (const std::string& name : driver.CheckerNames()) {
    const CheckerStats stats = driver.StatsFor(name);
    EXPECT_EQ(stats.runs, stats.passes + stats.fails + stats.context_not_ready +
                              stats.timeouts + stats.crashes)
        << name;
  }
}

// The tentpole invariant, enforced: once the slab freelist, worker-pool ring
// and claim table, wheel buckets, and scheduler scratch are warm, a dispatch
// round performs ZERO heap allocations — executions are recycled slab slots,
// batch tickets are pre-encoded, and the sampled queue-delay reservoir was
// reserved up front.
TEST(DriverScaleTest, SteadyStateDispatchIsAllocationFree) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options;
  options.executor.workers = 2;
  options.executor.queue_capacity = 1024;
  options.dispatch_batch = 8;
  options.per_checker_metrics = false;
  WatchdogDriver driver(clock, options);

  constexpr int kCheckers = 16;
  std::atomic<int64_t> total_runs{0};
  for (int i = 0; i < kCheckers; ++i) {
    CheckerOptions copts;
    copts.interval = Ms(5);
    copts.timeout = Sec(5);
    // Deliberately phase-aligned (no stagger): every tick dispatches the
    // whole fleet at once, so warmup's high-water marks (due scratch, slabs
    // in flight) already ARE the worst case. A one-core scheduler stall can
    // then never produce a catch-up burst bigger than a normal round — each
    // checker holds at most one wheel entry — which is what makes the
    // zero-allocation window deterministic instead of stall-flaky.
    copts.initial_delay = 0;
    driver.AddChecker(std::make_unique<ProbeChecker>(
        StrFormat("alloc%02d", i), "scale",
        [&total_runs] {
          total_runs.fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        },
        copts));
  }
  ASSERT_TRUE(driver.Start().ok());
  // Warmup: fills the slab freelist, ring, claim table, wheel buckets, and
  // scratch vectors to their steady capacities.
  clock.SleepFor(Ms(500));
  const int64_t runs_before = total_runs.load();
  g_alloc_trace_budget.store(6, std::memory_order_relaxed);
  const int64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  clock.SleepFor(Ms(400));  // steady state; no driver accessors touched
  const int64_t allocs_after = g_heap_allocs.load(std::memory_order_relaxed);
  g_alloc_trace_budget.store(0, std::memory_order_relaxed);
  const int64_t runs_after = total_runs.load();
  EXPECT_EQ(allocs_after - allocs_before, 0)
      << (allocs_after - allocs_before) << " heap allocations across "
      << (runs_after - runs_before) << " checks";
  EXPECT_GT(runs_after, runs_before + 100);  // the window really dispatched
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_TRUE(driver.Failures().empty());
}

// --- deadline-budget inference properties ---------------------------------
// InferDeadlineBudget is the pure rule behind per-checker hang deadlines:
// clamp(p99 x multiplier, floor, ceiling), falling back to the checker's
// static timeout when disabled or under-sampled. These pin the properties the
// driver relies on rather than specific numbers.

DeadlineBudgetOptions BudgetOptions() {
  DeadlineBudgetOptions options;
  options.enabled = true;
  options.tail_multiplier = 4.0;
  options.floor = Ms(20);
  options.ceiling = Sec(2);
  options.min_samples = 8;
  return options;
}

TEST(DeadlineBudgetTest, EmptyHistogramFallsBackToTheDefault) {
  Histogram hist;
  EXPECT_EQ(InferDeadlineBudget(hist, BudgetOptions(), Ms(400)), Ms(400));
}

TEST(DeadlineBudgetTest, UndersampledOrDisabledFallsBackToTheDefault) {
  DeadlineBudgetOptions options = BudgetOptions();
  Histogram hist;
  for (int i = 0; i < options.min_samples - 1; ++i) {
    hist.Record(static_cast<double>(Ms(50)));
  }
  EXPECT_EQ(InferDeadlineBudget(hist, options, Ms(400)), Ms(400));

  hist.Record(static_cast<double>(Ms(50)));  // now at min_samples
  EXPECT_NE(InferDeadlineBudget(hist, options, Ms(400)), Ms(400));
  options.enabled = false;
  EXPECT_EQ(InferDeadlineBudget(hist, options, Ms(400)), Ms(400));
}

TEST(DeadlineBudgetTest, BudgetsAreMonotoneInTheHistogramTail) {
  const DeadlineBudgetOptions options = BudgetOptions();
  Rng rng(0xb0d9e7);
  for (int trial = 0; trial < 50; ++trial) {
    Histogram base;
    Histogram stretched;
    const double stretch = 1.0 + rng.NextDouble() * 9.0;  // tail x1..x10
    const int samples = static_cast<int>(rng.Uniform(options.min_samples, 512));
    for (int i = 0; i < samples; ++i) {
      const double latency = static_cast<double>(rng.Uniform(Ms(1), Ms(200)));
      base.Record(latency);
      stretched.Record(latency * stretch);
    }
    const DurationNs lo = InferDeadlineBudget(base, options, Ms(400));
    const DurationNs hi = InferDeadlineBudget(stretched, options, Ms(400));
    EXPECT_GE(hi, lo) << "stretch " << stretch << " trial " << trial;
  }
}

TEST(DeadlineBudgetTest, BudgetsClampToFloorAndCeiling) {
  const DeadlineBudgetOptions options = BudgetOptions();
  Histogram tiny;   // microsecond checker: p99 x k is far below the floor
  Histogram huge;   // pathological tail: p99 x k is far above the ceiling
  for (int i = 0; i < 64; ++i) {
    tiny.Record(1000.0);                             // 1 us
    huge.Record(static_cast<double>(Sec(30)));
  }
  EXPECT_EQ(InferDeadlineBudget(tiny, options, Sec(10)), options.floor);
  EXPECT_EQ(InferDeadlineBudget(huge, options, Ms(1)), options.ceiling);
  // And between the clamps the rule is exactly p99 x multiplier.
  Histogram mid;
  for (int i = 0; i < 64; ++i) {
    mid.Record(static_cast<double>(Ms(50)));
  }
  EXPECT_EQ(InferDeadlineBudget(mid, options, Sec(10)),
            static_cast<DurationNs>(Ms(50) * options.tail_multiplier));
}

// Integration: a warmed budget replaces a huge static timeout, so a hang in a
// normally-fast checker is declared in milliseconds, not after the global
// deadline. Abandon/suspend/drain semantics are the same as the fixed path.
TEST(DeadlineBudgetTest, WarmedBudgetDetectsHangsFasterThanStaticTimeout) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);

  WatchdogDriver::Options options;
  options.executor.workers = 2;
  options.deadline_budget.enabled = true;
  options.deadline_budget.floor = Ms(40);
  options.deadline_budget.min_samples = 8;
  options.release_on_stop = [&injector] { injector.ClearAll(); };
  WatchdogDriver driver(clock, options);

  CheckerOptions fast;
  fast.interval = Ms(10);
  fast.timeout = Sec(30);  // absurd static deadline the budget must replace
  driver.AddChecker(std::make_unique<MimicChecker>(
      "fast", "budget", nullptr,
      [&injector](const CheckContext&, MimicChecker&) {
        (void)injector.Act("budget.op");
        return CheckResult::Pass();
      },
      fast));
  ASSERT_TRUE(driver.Start().ok());

  // Warm the latency histogram past min_samples and a refresh boundary.
  ASSERT_TRUE(WaitForStat(driver, clock, "fast", 24));
  const DriverMetricsSnapshot warmed = driver.DriverMetrics();
  ASSERT_LT(warmed.checker_deadline_ns.at("fast"), static_cast<double>(Sec(1)));

  FaultSpec hang;
  hang.id = "stuck";
  hang.site_pattern = "budget.op";
  hang.kind = FaultKind::kHang;
  injector.Inject(hang);
  // Detection must arrive on the budget's timescale; 5 s of grace is ~100x
  // the inferred deadline yet a fraction of the 30 s static timeout.
  EXPECT_TRUE(driver.WaitForFailure(Sec(5), [](const FailureSignature& sig) {
    return sig.type == FailureType::kLivenessTimeout && sig.checker_name == "fast";
  }));
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  EXPECT_EQ(metrics.workers_abandoned, 1);
  EXPECT_EQ(metrics.timeouts, 1);
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_EQ(injector.parked_thread_count(), 0);
}

}  // namespace
}  // namespace wdg
