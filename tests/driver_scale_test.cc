// Scale and shutdown behavior of the scheduler/executor split: hundreds of
// checkers must share a small worker pool with bounded queue delay and no
// thread-per-execution explosion; an injected hang must abandon exactly one
// worker (and respawn its replacement); Stop() must join cleanly even while
// the submission queue is saturated. Also the property suite for the
// histogram-informed deadline-budget inference. Runs under the TSan CI leg.
#include <gtest/gtest.h>

#include <atomic>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/fault/fault_injector.h"
#include "src/watchdog/builtin_checkers.h"
#include "src/watchdog/driver.h"

namespace wdg {
namespace {

// Polls until `name` has at least `runs` completed runs; false on timeout.
bool WaitForStat(WatchdogDriver& driver, Clock& clock, const std::string& name,
                 int64_t runs, DurationNs timeout = Sec(10)) {
  const TimeNs deadline = clock.NowNs() + timeout;
  while (clock.NowNs() < deadline) {
    if (driver.StatsFor(name).runs >= runs) {
      return true;
    }
    clock.SleepFor(Ms(10));
  }
  return false;
}

CheckerOptions ScaleChecker(DurationNs initial_delay = 0) {
  CheckerOptions options;
  options.interval = Ms(50);
  options.timeout = Ms(400);
  options.initial_delay = initial_delay;
  return options;
}

TEST(DriverScaleTest, HundredsOfCheckersShareASmallPool) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options;
  options.executor.workers = 4;
  options.executor.queue_capacity = 512;
  WatchdogDriver driver(clock, options);

  constexpr int kCheckers = 220;
  std::atomic<int64_t> total_runs{0};
  for (int i = 0; i < kCheckers; ++i) {
    // Staggered starts spread the fleet across the interval instead of
    // slamming the queue with 220 simultaneous submissions every period.
    driver.AddChecker(std::make_unique<ProbeChecker>(
        StrFormat("p%03d", i), "scale",
        [&total_runs] {
          total_runs.fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        },
        ScaleChecker(/*initial_delay=*/Ms(i % 50))));
  }
  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(600));
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  EXPECT_TRUE(driver.Stop().ok());

  // Every checker got scheduled, repeatedly.
  EXPECT_GE(total_runs.load(), kCheckers * 2);
  for (const std::string& name : driver.CheckerNames()) {
    EXPECT_GE(driver.StatsFor(name).runs, 1) << name;
  }
  // The whole fleet ran on the fixed pool: no thread-per-execution growth.
  EXPECT_EQ(metrics.pool_workers, 4);
  EXPECT_EQ(metrics.threads_spawned, 4);
  EXPECT_EQ(metrics.workers_abandoned, 0);
  // Queue delay stays bounded (generous ceiling: this also runs under TSan).
  EXPECT_LT(metrics.queue_delay_p99_ns, static_cast<double>(Ms(300)));
  EXPECT_TRUE(driver.Failures().empty());
}

TEST(DriverScaleTest, InjectedHangAbandonsExactlyOneWorkerAndRespawns) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);
  FaultSpec hang;
  hang.id = "stuck";
  hang.site_pattern = "scale.op";
  hang.kind = FaultKind::kHang;
  injector.Inject(hang);

  WatchdogDriver::Options options;
  options.executor.workers = 3;
  options.release_on_stop = [&injector] { injector.ClearAll(); };
  WatchdogDriver driver(clock, options);

  CheckerOptions hung_options;
  hung_options.interval = Ms(20);
  hung_options.timeout = Ms(80);
  driver.AddChecker(std::make_unique<MimicChecker>(
      "hung", "scale", nullptr,
      [&injector](const CheckContext&, MimicChecker&) {
        (void)injector.Act("scale.op");
        return CheckResult::Pass();
      },
      hung_options));
  std::atomic<int64_t> healthy_runs{0};
  driver.AddChecker(std::make_unique<ProbeChecker>(
      "healthy", "scale",
      [&healthy_runs] {
        healthy_runs.fetch_add(1, std::memory_order_relaxed);
        return Status::Ok();
      },
      ScaleChecker()));
  ASSERT_TRUE(driver.Start().ok());

  ASSERT_TRUE(driver.WaitForFailure(Sec(5), [](const FailureSignature& sig) {
    return sig.type == FailureType::kLivenessTimeout && sig.checker_name == "hung";
  }));
  clock.SleepFor(Ms(100));  // let the respawned worker settle in
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  const int64_t runs_at_detect = healthy_runs.load();
  clock.SleepFor(Ms(150));

  // Exactly one worker was parked; one replacement thread restored capacity.
  EXPECT_EQ(metrics.workers_abandoned, 1);
  EXPECT_EQ(metrics.threads_spawned, 3 + 1);
  EXPECT_EQ(metrics.timeouts, 1);
  // The pool kept serving the healthy checker while one worker hangs.
  EXPECT_GT(healthy_runs.load(), runs_at_detect);
  EXPECT_TRUE(driver.Stop().ok());  // release_on_stop unblocks the hang; joins must not wedge
  EXPECT_EQ(injector.parked_thread_count(), 0);
}

TEST(DriverScaleTest, StopUnderSaturatedQueueJoinsCleanly) {
  RealClock& clock = RealClock::Instance();
  WatchdogDriver::Options options;
  options.executor.workers = 2;
  options.executor.queue_capacity = 4;  // far smaller than the fleet
  WatchdogDriver driver(clock, options);

  constexpr int kCheckers = 64;
  for (int i = 0; i < kCheckers; ++i) {
    driver.AddChecker(std::make_unique<ProbeChecker>(
        StrFormat("sat%02d", i), "scale",
        [&clock] {
          clock.SleepFor(Ms(2));  // keep workers busy so the queue stays full
          return Status::Ok();
        },
        ScaleChecker()));
  }
  ASSERT_TRUE(driver.Start().ok());
  clock.SleepFor(Ms(120));
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  EXPECT_TRUE(driver.Stop().ok());  // must discard queued work and join without deadlock
  EXPECT_FALSE(driver.running());

  // The tiny queue actually pushed back — and backpressure never grew threads.
  EXPECT_GT(metrics.queue_rejections, 0);
  EXPECT_EQ(metrics.threads_spawned, 2);
  // Stats stay coherent: a run either completed with an outcome or was
  // un-counted when the queue was discarded at Stop.
  for (const std::string& name : driver.CheckerNames()) {
    const CheckerStats stats = driver.StatsFor(name);
    EXPECT_EQ(stats.runs, stats.passes + stats.fails + stats.context_not_ready +
                              stats.timeouts + stats.crashes)
        << name;
  }
}

// --- deadline-budget inference properties ---------------------------------
// InferDeadlineBudget is the pure rule behind per-checker hang deadlines:
// clamp(p99 x multiplier, floor, ceiling), falling back to the checker's
// static timeout when disabled or under-sampled. These pin the properties the
// driver relies on rather than specific numbers.

DeadlineBudgetOptions BudgetOptions() {
  DeadlineBudgetOptions options;
  options.enabled = true;
  options.tail_multiplier = 4.0;
  options.floor = Ms(20);
  options.ceiling = Sec(2);
  options.min_samples = 8;
  return options;
}

TEST(DeadlineBudgetTest, EmptyHistogramFallsBackToTheDefault) {
  Histogram hist;
  EXPECT_EQ(InferDeadlineBudget(hist, BudgetOptions(), Ms(400)), Ms(400));
}

TEST(DeadlineBudgetTest, UndersampledOrDisabledFallsBackToTheDefault) {
  DeadlineBudgetOptions options = BudgetOptions();
  Histogram hist;
  for (int i = 0; i < options.min_samples - 1; ++i) {
    hist.Record(static_cast<double>(Ms(50)));
  }
  EXPECT_EQ(InferDeadlineBudget(hist, options, Ms(400)), Ms(400));

  hist.Record(static_cast<double>(Ms(50)));  // now at min_samples
  EXPECT_NE(InferDeadlineBudget(hist, options, Ms(400)), Ms(400));
  options.enabled = false;
  EXPECT_EQ(InferDeadlineBudget(hist, options, Ms(400)), Ms(400));
}

TEST(DeadlineBudgetTest, BudgetsAreMonotoneInTheHistogramTail) {
  const DeadlineBudgetOptions options = BudgetOptions();
  Rng rng(0xb0d9e7);
  for (int trial = 0; trial < 50; ++trial) {
    Histogram base;
    Histogram stretched;
    const double stretch = 1.0 + rng.NextDouble() * 9.0;  // tail x1..x10
    const int samples = static_cast<int>(rng.Uniform(options.min_samples, 512));
    for (int i = 0; i < samples; ++i) {
      const double latency = static_cast<double>(rng.Uniform(Ms(1), Ms(200)));
      base.Record(latency);
      stretched.Record(latency * stretch);
    }
    const DurationNs lo = InferDeadlineBudget(base, options, Ms(400));
    const DurationNs hi = InferDeadlineBudget(stretched, options, Ms(400));
    EXPECT_GE(hi, lo) << "stretch " << stretch << " trial " << trial;
  }
}

TEST(DeadlineBudgetTest, BudgetsClampToFloorAndCeiling) {
  const DeadlineBudgetOptions options = BudgetOptions();
  Histogram tiny;   // microsecond checker: p99 x k is far below the floor
  Histogram huge;   // pathological tail: p99 x k is far above the ceiling
  for (int i = 0; i < 64; ++i) {
    tiny.Record(1000.0);                             // 1 us
    huge.Record(static_cast<double>(Sec(30)));
  }
  EXPECT_EQ(InferDeadlineBudget(tiny, options, Sec(10)), options.floor);
  EXPECT_EQ(InferDeadlineBudget(huge, options, Ms(1)), options.ceiling);
  // And between the clamps the rule is exactly p99 x multiplier.
  Histogram mid;
  for (int i = 0; i < 64; ++i) {
    mid.Record(static_cast<double>(Ms(50)));
  }
  EXPECT_EQ(InferDeadlineBudget(mid, options, Sec(10)),
            static_cast<DurationNs>(Ms(50) * options.tail_multiplier));
}

// Integration: a warmed budget replaces a huge static timeout, so a hang in a
// normally-fast checker is declared in milliseconds, not after the global
// deadline. Abandon/suspend/drain semantics are the same as the fixed path.
TEST(DeadlineBudgetTest, WarmedBudgetDetectsHangsFasterThanStaticTimeout) {
  RealClock& clock = RealClock::Instance();
  FaultInjector injector(clock);

  WatchdogDriver::Options options;
  options.executor.workers = 2;
  options.deadline_budget.enabled = true;
  options.deadline_budget.floor = Ms(40);
  options.deadline_budget.min_samples = 8;
  options.release_on_stop = [&injector] { injector.ClearAll(); };
  WatchdogDriver driver(clock, options);

  CheckerOptions fast;
  fast.interval = Ms(10);
  fast.timeout = Sec(30);  // absurd static deadline the budget must replace
  driver.AddChecker(std::make_unique<MimicChecker>(
      "fast", "budget", nullptr,
      [&injector](const CheckContext&, MimicChecker&) {
        (void)injector.Act("budget.op");
        return CheckResult::Pass();
      },
      fast));
  ASSERT_TRUE(driver.Start().ok());

  // Warm the latency histogram past min_samples and a refresh boundary.
  ASSERT_TRUE(WaitForStat(driver, clock, "fast", 24));
  const DriverMetricsSnapshot warmed = driver.DriverMetrics();
  ASSERT_LT(warmed.checker_deadline_ns.at("fast"), static_cast<double>(Sec(1)));

  FaultSpec hang;
  hang.id = "stuck";
  hang.site_pattern = "budget.op";
  hang.kind = FaultKind::kHang;
  injector.Inject(hang);
  // Detection must arrive on the budget's timescale; 5 s of grace is ~100x
  // the inferred deadline yet a fraction of the 30 s static timeout.
  EXPECT_TRUE(driver.WaitForFailure(Sec(5), [](const FailureSignature& sig) {
    return sig.type == FailureType::kLivenessTimeout && sig.checker_name == "fast";
  }));
  const DriverMetricsSnapshot metrics = driver.DriverMetrics();
  EXPECT_EQ(metrics.workers_abandoned, 1);
  EXPECT_EQ(metrics.timeouts, 1);
  EXPECT_TRUE(driver.Stop().ok());
  EXPECT_EQ(injector.parked_thread_count(), 0);
}

}  // namespace
}  // namespace wdg
