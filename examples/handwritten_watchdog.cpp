// Building a watchdog BY HAND with the core library — no AutoWatchdog.
// Shows the public API a developer uses directly: the three checker families
// of Table 2 (probe, signal, mimic), contexts + hooks, recovery actions, and
// the §5.1 probe-validation escalation.
#include <cstdio>
#include <cstdlib>

#include "src/common/strings.h"
#include "src/kvs/client.h"
#include "src/kvs/server.h"
#include "src/watchdog/builder.h"
#include "src/watchdog/builtin_checkers.h"
#include "src/watchdog/driver.h"

// Registration misconfiguration is a typed Status from CheckerBuilder; a
// demo just treats any of them as fatal.
static void OrDie(const wdg::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "checker registration failed: %s\n", status.ToString().c_str());
    std::abort();
  }
}

int main() {
  wdg::RealClock& clock = wdg::RealClock::Instance();
  wdg::FaultInjector injector(clock);
  wdg::SimDisk disk(clock, injector);
  wdg::SimNet net(clock, injector);

  kvs::KvsOptions options;
  options.node_id = "kvs1";
  options.flush_threshold_bytes = 512;
  options.flush_poll = wdg::Ms(10);
  kvs::KvsNode node(clock, disk, net, options);
  (void)node.Start();

  // --- the driver ----------------------------------------------------------
  wdg::WatchdogDriver::Options driver_options;
  driver_options.release_on_stop = [&injector] { injector.ClearAll(); };
  wdg::WatchdogDriver driver(clock, driver_options);

  // --- 1. a probe checker: act like a client ---------------------------------
  kvs::KvsClient probe_client(net, "prober", "kvs1", wdg::Ms(150));
  OrDie(wdg::CheckerBuilder("set_get_probe")
            .Component("kvs")
            .Interval(wdg::Ms(25))
            .Deadline(wdg::Ms(300))
            .Debounce(2)
            .Probe([&probe_client] {
              WDG_RETURN_IF_ERROR(probe_client.Set("__wdg/probe", "v"));
              return probe_client.Get("__wdg/probe").status();
            })
            .RegisterWith(driver));

  // --- 2. a signal checker: watch a health indicator -------------------------
  OrDie(wdg::CheckerBuilder("memtable_watch")
            .Component("kvs.flusher")
            .Interval(wdg::Ms(25))
            .Deadline(wdg::Ms(300))
            .Debounce(3)
            .Signal("memtable bytes",
                    [&node] { return static_cast<double>(node.memtable().ApproximateBytes()); },
                    [](double bytes) { return bytes < 16 * 1024; })
            .RegisterWith(driver));

  // --- 3. a hand-written mimic checker, with §5.1 escalation ------------------
  // Context synchronized by a hook we arm ourselves on the flusher's hook
  // site; a separate client-level probe validates mimic alarms for
  // client-visible impact before they reach listeners unconfirmed.
  node.hooks().Arm("FlushMemtable:1", "my_flush_ctx");
  kvs::KvsClient validation_client(net, "validator", "kvs1", wdg::Ms(150));
  OrDie(wdg::CheckerBuilder("flush_mimic")
            .Component("kvs.flusher")
            .Interval(wdg::Ms(25))
            .Deadline(wdg::Ms(300))
            .ContextFactory([&node] { return node.hooks().Context("my_flush_ctx"); })
            .EscalationProbe([&validation_client] {
              return validation_client.Set("__wdg/validate", "ping");
            })
            .Mimic([&node](const wdg::CheckContext& ctx, wdg::MimicChecker& self) {
        // Mimic the flush's disk write into a scratch file (I/O redirection).
        wdg::SourceLocation loc{"kvs.flusher", "FlushMemtable", "disk.write", 3};
        self.SetCurrentOp(loc);
        const std::string path = wdg::SimDisk::ScratchPath("flush_mimic", "probe.sst");
        wdg::SimDisk& d = node.disk();
        if (!d.Exists(path)) {
          const wdg::Status created = d.Create(path);
          if (!created.ok()) {
            return wdg::CheckResult::Fail(self.MakeSignature(
                wdg::FailureType::kOperationError, loc, created.code(), created.ToString(),
                ctx.Dump()));
          }
        }
        const wdg::Status wrote = d.Write(path, 0, std::string(512, 's'));
        if (!wrote.ok()) {
          return wdg::CheckResult::Fail(self.MakeSignature(
              wdg::FailureType::kOperationError, loc, wrote.code(), wrote.ToString(),
              ctx.Dump()));
        }
        return wdg::CheckResult::Pass();
            })
            .RegisterWith(driver));

  // --- 4. a cheap-recovery action (§5.2) ---------------------------------------
  wdg::CallbackRecovery restart_flusher([](const wdg::FailureSignature& sig) {
    std::printf("  [recovery] would restart component %s (pinpoint: %s)\n",
                sig.location.component.c_str(), sig.location.ToString().c_str());
  });
  driver.AddRecoveryAction("kvs.flusher", &restart_flusher);

  if (const wdg::Status st = driver.Start(); !st.ok()) {
    std::fprintf(stderr, "driver Start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("hand-built watchdog running: %d checkers\n", driver.checker_count());

  kvs::KvsClient client(net, "app", "kvs1");
  for (int i = 0; i < 40; ++i) {
    (void)client.Set(wdg::StrFormat("key%d", i), std::string(64, 'x'));
  }
  clock.SleepFor(wdg::Ms(250));
  std::printf("healthy: %zu alarms\n", driver.Failures().size());

  std::printf("injecting disk write failures...\n");
  wdg::FaultSpec fault;
  fault.id = "disk";
  fault.site_pattern = "disk.write";
  fault.kind = wdg::FaultKind::kError;
  injector.Inject(fault);

  if (driver.WaitForFailure(wdg::Sec(3))) {
    for (const auto& sig : driver.Failures()) {
      std::printf("ALARM [%s] %s\n", sig.checker_kind.c_str(), sig.ToString().c_str());
    }
  }
  injector.ClearAll();
  (void)driver.Stop();
  node.Stop();
  return 0;
}
