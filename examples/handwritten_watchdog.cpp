// Building a watchdog BY HAND with the core library — no AutoWatchdog.
// Shows the public API a developer uses directly: the three checker families
// of Table 2 (probe, signal, mimic), contexts + hooks, recovery actions, and
// the §5.1 probe-validation escalation.
#include <cstdio>

#include "src/common/strings.h"
#include "src/kvs/client.h"
#include "src/kvs/server.h"
#include "src/watchdog/builtin_checkers.h"
#include "src/watchdog/driver.h"

int main() {
  wdg::RealClock& clock = wdg::RealClock::Instance();
  wdg::FaultInjector injector(clock);
  wdg::SimDisk disk(clock, injector);
  wdg::SimNet net(clock, injector);

  kvs::KvsOptions options;
  options.node_id = "kvs1";
  options.flush_threshold_bytes = 512;
  options.flush_poll = wdg::Ms(10);
  kvs::KvsNode node(clock, disk, net, options);
  (void)node.Start();

  // --- the driver, with probe-validation escalation ------------------------
  kvs::KvsClient validation_client(net, "validator", "kvs1", wdg::Ms(150));
  wdg::WatchdogDriver::Options driver_options;
  driver_options.release_on_stop = [&injector] { injector.ClearAll(); };
  driver_options.validation_probe = [&validation_client] {
    return validation_client.Set("__wdg/validate", "ping");
  };
  wdg::WatchdogDriver driver(clock, driver_options);

  wdg::CheckerOptions fast;
  fast.interval = wdg::Ms(25);
  fast.timeout = wdg::Ms(300);

  // --- 1. a probe checker: act like a client ---------------------------------
  kvs::KvsClient probe_client(net, "prober", "kvs1", wdg::Ms(150));
  driver.AddChecker(std::make_unique<wdg::ProbeChecker>(
      "set_get_probe", "kvs",
      [&probe_client] {
        WDG_RETURN_IF_ERROR(probe_client.Set("__wdg/probe", "v"));
        return probe_client.Get("__wdg/probe").status();
      },
      fast, /*consecutive_needed=*/2));

  // --- 2. a signal checker: watch a health indicator -------------------------
  driver.AddChecker(std::make_unique<wdg::SignalChecker>(
      "memtable_watch", "kvs.flusher", "memtable bytes",
      [&node] { return static_cast<double>(node.memtable().ApproximateBytes()); },
      [](double bytes) { return bytes < 16 * 1024; }, /*consecutive_needed=*/3, fast));

  // --- 3. a hand-written mimic checker ----------------------------------------
  // Context synchronized by a hook we arm ourselves on the flusher's hook site.
  node.hooks().Arm("FlushMemtable:1", "my_flush_ctx");
  wdg::CheckContext* flush_ctx = node.hooks().Context("my_flush_ctx");
  driver.AddChecker(std::make_unique<wdg::MimicChecker>(
      "flush_mimic", "kvs.flusher", flush_ctx,
      [&node](const wdg::CheckContext& ctx, wdg::MimicChecker& self) {
        // Mimic the flush's disk write into a scratch file (I/O redirection).
        wdg::SourceLocation loc{"kvs.flusher", "FlushMemtable", "disk.write", 3};
        self.SetCurrentOp(loc);
        const std::string path = wdg::SimDisk::ScratchPath("flush_mimic", "probe.sst");
        wdg::SimDisk& d = node.disk();
        if (!d.Exists(path)) {
          const wdg::Status created = d.Create(path);
          if (!created.ok()) {
            return wdg::CheckResult::Fail(self.MakeSignature(
                wdg::FailureType::kOperationError, loc, created.code(), created.ToString(),
                ctx.Dump()));
          }
        }
        const wdg::Status wrote = d.Write(path, 0, std::string(512, 's'));
        if (!wrote.ok()) {
          return wdg::CheckResult::Fail(self.MakeSignature(
              wdg::FailureType::kOperationError, loc, wrote.code(), wrote.ToString(),
              ctx.Dump()));
        }
        return wdg::CheckResult::Pass();
      },
      fast));

  // --- 4. a cheap-recovery action (§5.2) ---------------------------------------
  wdg::CallbackRecovery restart_flusher([](const wdg::FailureSignature& sig) {
    std::printf("  [recovery] would restart component %s (pinpoint: %s)\n",
                sig.location.component.c_str(), sig.location.ToString().c_str());
  });
  driver.AddRecoveryAction("kvs.flusher", &restart_flusher);

  driver.Start();
  std::printf("hand-built watchdog running: %d checkers\n", driver.checker_count());

  kvs::KvsClient client(net, "app", "kvs1");
  for (int i = 0; i < 40; ++i) {
    (void)client.Set(wdg::StrFormat("key%d", i), std::string(64, 'x'));
  }
  clock.SleepFor(wdg::Ms(250));
  std::printf("healthy: %zu alarms\n", driver.Failures().size());

  std::printf("injecting disk write failures...\n");
  wdg::FaultSpec fault;
  fault.id = "disk";
  fault.site_pattern = "disk.write";
  fault.kind = wdg::FaultKind::kError;
  injector.Inject(fault);

  if (driver.WaitForFailure(wdg::Sec(3))) {
    for (const auto& sig : driver.Failures()) {
      std::printf("ALARM [%s] %s\n", sig.checker_kind.c_str(), sig.ToString().c_str());
    }
  }
  injector.ClearAll();
  driver.Stop();
  node.Stop();
  return 0;
}
