// AutoWatchdog as an offline tool: analyze a module's IR, show the reduction
// walk (Figure 2), the inferred contexts and hook plan, and the generated
// checker sources (Figure 3) — without running anything.
//
//   $ ./examples/autowd_generate [kvs|minizk]
#include <cstdio>
#include <cstring>

#include "src/autowd/autowatchdog.h"
#include "src/autowd/codegen.h"
#include "src/kvs/ir_model.h"
#include "src/minizk/ir_model.h"

int main(int argc, char** argv) {
  const bool use_kvs = argc < 2 || std::strcmp(argv[1], "kvs") == 0;

  awd::Module module = [&] {
    if (use_kvs) {
      kvs::KvsOptions options;
      options.node_id = "kvs1";
      options.followers = {"kvs2"};
      return kvs::DescribeIr(options);
    }
    minizk::ZkOptions options;
    options.node_id = "zk-leader";
    options.followers = {"zk-f1"};
    return minizk::DescribeIr(options);
  }();

  std::printf("analyzing module '%s' (%zu functions, %d instructions)\n\n",
              module.name().c_str(), module.functions().size(), module.TotalInstrCount());

  const awd::GenerationReport report = awd::Analyze(module);

  // The Figure-2 view: what survived reduction and where hooks go.
  std::printf("%s\n", awd::EmitReductionTrace(module, report.program, report.plan).c_str());
  std::printf("\n%s\n\n", awd::SummarizeReduction(report.program).c_str());

  // The Figure-3 view: one generated checker class per long-running region.
  for (const awd::ReducedFunction& fn : report.program.functions) {
    std::printf("%s\n", awd::EmitCheckerSource(fn, report.plan).c_str());
  }

  // The context factory plan.
  std::printf("context factories and hook insertions:\n");
  for (const awd::ContextSpec& spec : report.plan.contexts) {
    std::printf("  context %-28s vars: {", spec.context_name.c_str());
    for (size_t i = 0; i < spec.variables.size(); ++i) {
      std::printf("%s%s", i != 0 ? ", " : "", spec.variables[i].c_str());
    }
    std::printf("}\n");
  }
  for (const awd::HookPoint& point : report.plan.points) {
    std::printf("  hook at %-24s -> %s\n", point.hook_site.c_str(),
                point.context_name.c_str());
  }
  return 0;
}
