// The HDFS DataNode disk checker story (§3.3, Table 2's mimic exemplar):
//
//   "the disk checker module in HDFS initially only checked directory
//    permissions, but later it was enhanced [HADOOP-13738] to create some
//    files and invoke functions from the DataNode main program to do real
//    I/O in a similar way."
//
// This demo puts both generations of the checker against the same dying
// disk: the permissions-only check stays green forever; the generated mimic
// checker (real I/O through the write path's op sites) alarms and pinpoints.
#include <cstdio>

#include "src/autowd/autowatchdog.h"
#include "src/common/strings.h"
#include "src/minihdfs/ir_model.h"

int main() {
  wdg::RealClock& clock = wdg::RealClock::Instance();
  wdg::FaultInjector injector(clock);
  wdg::SimDisk disk(clock, injector);
  wdg::SimNet net(clock, injector);

  minihdfs::NameNode namenode(clock, net);
  namenode.Start();
  minihdfs::DataNode datanode(clock, disk, net);
  if (!datanode.Start().ok()) {
    return 1;
  }

  awd::OpExecutorRegistry registry;
  minihdfs::RegisterOpExecutors(registry, datanode);
  wdg::WatchdogDriver::Options driver_options;
  driver_options.release_on_stop = [&injector] { injector.ClearAll(); };
  wdg::WatchdogDriver driver(clock, driver_options);
  awd::GenerationOptions gen;
  gen.checker.interval = wdg::Ms(25);
  gen.checker.timeout = wdg::Ms(250);
  awd::Generate(minihdfs::DescribeIr(datanode.options()), datanode.hooks(), registry, driver,
                gen);
  if (const wdg::Status st = driver.Start(); !st.ok()) {
    std::fprintf(stderr, "driver Start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Store a block so the write-path context synchronizes.
  wdg::Endpoint* client = net.CreateEndpoint("client");
  (void)client->Call("dn1", minihdfs::kMsgWriteBlock,
                     std::string("1") + '\x1f' + "block data", wdg::Ms(500));
  clock.SleepFor(wdg::Ms(150));
  std::printf("healthy DataNode: 1 block stored, watchdog silent (%zu alarms)\n",
              driver.Failures().size());

  std::printf("\n>>> the disk dies for writes (reads and listings still work) <<<\n\n");
  wdg::FaultSpec dead;
  dead.id = "dead";
  dead.site_pattern = "disk.write";
  dead.kind = wdg::FaultKind::kError;
  injector.Inject(dead);

  // Generation 1: the original permissions-only check.
  const wdg::Status weak = datanode.CheckDirsPermissionsOnly();
  std::printf("permissions-only disk check (pre-HADOOP-13738): %s\n", weak.ToString().c_str());

  // Generation 2: the generated mimic checker doing real I/O.
  if (driver.WaitForFailure(wdg::Sec(3))) {
    const auto failure = *driver.FirstFailure();
    std::printf("generated mimic disk checker:                   ALARM\n");
    std::printf("  %s\n", failure.ToString().c_str());
  } else {
    std::printf("mimic checker silent (unexpected)\n");
  }
  std::printf("\nheartbeats to the NameNode during all of this: %s\n",
              namenode.IsLive("dn1", wdg::Ms(100)) ? "flowing (node 'healthy')" : "stopped");

  injector.ClearAll();
  (void)driver.Stop();
  datanode.Stop();
  namenode.Stop();
  return 0;
}
