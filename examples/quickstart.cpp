// Quickstart: attach an AutoWatchdog-generated watchdog to a kvs node,
// run traffic, inject a production fault, and watch the watchdog pinpoint it.
//
//   $ ./examples/quickstart
//
// Walks the full pipeline of the paper in ~2 seconds:
//   describe (IR) -> reduce -> infer contexts -> synthesize checkers ->
//   arm hooks -> run concurrently -> detect + localize.
#include <cstdio>
#include <map>
#include <string>

#include "src/autowd/autowatchdog.h"
#include "src/common/strings.h"
#include "src/kvs/client.h"
#include "src/kvs/ir_model.h"
#include "src/kvs/server.h"
#include "src/watchdog/builder.h"
#include "src/watchdog/context.h"

int main() {
  // 1. A simulated machine: clock, fault injector, disk, network.
  wdg::RealClock& clock = wdg::RealClock::Instance();
  wdg::FaultInjector injector(clock);
  wdg::SimDisk disk(clock, injector);
  wdg::SimNet net(clock, injector);

  // 2. The monitored system: a kvs node (listener, WAL, memtable, flusher,
  //    compaction, replication, partition manager).
  kvs::KvsOptions options;
  options.node_id = "kvs1";
  options.flush_threshold_bytes = 1024;
  options.flush_poll = wdg::Ms(10);
  kvs::KvsNode node(clock, disk, net, options);
  if (!node.Start().ok()) {
    std::fprintf(stderr, "node failed to start\n");
    return 1;
  }

  // 3. Generate the watchdog: reduce the node's IR to its vulnerable ops,
  //    synthesize mimic checkers, arm hooks, register with a driver.
  awd::OpExecutorRegistry registry;
  kvs::RegisterOpExecutors(registry, node);
  wdg::WatchdogDriver::Options driver_options;
  driver_options.release_on_stop = [&injector] { injector.ClearAll(); };
  driver_options.shards = 2;  // fleet-scale scheduling, demo-sized
  wdg::WatchdogDriver driver(clock, driver_options);
  awd::GenerationOptions gen;
  gen.checker.interval = wdg::Ms(25);
  gen.checker.timeout = wdg::Ms(250);
  const awd::GenerationReport report =
      awd::Generate(kvs::DescribeIr(node.options()), node.hooks(), registry, driver, gen);
  std::printf("generated %zu mimic checkers (%d reduced ops, %d hooks armed)\n",
              report.checker_names.size(), report.program.stats.ops_retained,
              report.hooks_armed);

  // One hand-written dormant checker rides along: it subscribes to a context
  // key that is published once and never advances, so after its first run the
  // driver skips it at dispatch time (wdg.driver.skipped_unchanged below).
  wdg::CheckContext idle_context("quickstart.idle");
  const auto idle_key = wdg::ContextKey<int64_t>::Of("quickstart.idle.progress");
  idle_context.Set(idle_key, 0);
  idle_context.MarkReady(1);
  if (const wdg::Status st =
          wdg::CheckerBuilder("idle-subscriber")
              .Component("quickstart")
              .Interval(wdg::Ms(25))
              .WithContext(&idle_context)
              .SubscribeKey(idle_key)
              .Mimic([](const wdg::CheckContext&, wdg::MimicChecker&) {
                return wdg::CheckResult::Pass();
              })
              .RegisterWith(driver);
      !st.ok()) {
    std::fprintf(stderr, "idle-subscriber registration failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  if (const wdg::Status st = driver.Start(); !st.ok()) {
    std::fprintf(stderr, "driver Start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Normal traffic: contexts synchronize, checkers run, watchdog is silent.
  kvs::KvsClient client(net, "app", "kvs1");
  for (int i = 0; i < 50; ++i) {
    // 64-byte values so the memtable crosses the flush threshold and the
    // flusher's hook fires (otherwise its checker stays dormant — correctly).
    if (!client.Set(wdg::StrFormat("user:%d", i), std::string(64, 'p')).ok()) {
      std::fprintf(stderr, "set failed unexpectedly\n");
    }
  }
  clock.SleepFor(wdg::Ms(300));
  std::printf("healthy phase: %zu alarms (expected 0)\n", driver.Failures().size());

  // 5. Production fault: the disk starts failing writes. Clients don't notice
  //    immediately (the memtable absorbs them) — a gray failure.
  std::printf("injecting disk write errors...\n");
  wdg::FaultSpec fault;
  fault.id = "bad-disk";
  fault.site_pattern = "disk.write";
  fault.kind = wdg::FaultKind::kError;
  injector.Inject(fault);
  (void)client.Set("user:51", "still-works");  // client path unaffected

  // 6. The watchdog detects and pinpoints.
  if (driver.WaitForFailure(wdg::Sec(3))) {
    const auto failure = *driver.FirstFailure();
    std::printf("DETECTED:  %s\n", failure.ToString().c_str());
    std::printf("context:   %s\n", failure.context_dump.c_str());
    std::printf("pinpoint:  %s level\n",
                wdg::LocalizationLevelName(failure.location.Level()));
  } else {
    std::printf("no detection (unexpected)\n");
  }

  // 7. The watchdog watches itself: pool + queue health from DriverMetrics().
  const wdg::DriverMetricsSnapshot wd = driver.DriverMetrics();
  std::printf("watchdog:  %lld checks on %d pooled workers "
              "(%lld threads spawned, queue p99 %.0f us)\n",
              static_cast<long long>(wd.executions_completed), wd.pool_workers,
              static_cast<long long>(wd.threads_spawned),
              wd.queue_delay_p99_ns / 1000.0);

  // 8. Fleet-scale view, straight from the flattened metrics map: runs the
  //    driver skipped because no subscribed key advanced, plus the per-shard
  //    gauges the sharded scheduler exports (only present when shards > 1).
  const std::map<std::string, double> flat = wd.ToMap();
  std::printf("fleet:     %.0f shards, %.0f runs skipped "
              "(subscribed keys unchanged)\n",
              flat.at("wdg.driver.shards"),
              flat.at("wdg.driver.skipped_unchanged"));
  for (int s = 0; s < wd.shards; ++s) {
    const std::string prefix = wdg::StrFormat("wdg.driver.shard.%d.", s);
    std::printf("  shard %d: workers %.0f, completed %.0f, wheel entries %.0f, "
                "skipped %.0f\n",
                s, flat.at(prefix + "pool.workers"),
                flat.at(prefix + "completed"),
                flat.at(prefix + "wheel.entries"),
                flat.at(prefix + "skipped_unchanged"));
  }

  injector.ClearAll();
  (void)driver.Stop();
  node.Stop();
  return 0;
}
