// Narrated reproduction of ZOOKEEPER-2201 on minizk (the paper's §4.2 case
// study): a network fault wedges the write pipeline inside a critical
// section, every conventional health signal stays green, and the generated
// watchdog is the only detector that fires — with the blocked call pinpointed.
#include <cstdio>

#include "src/autowd/autowatchdog.h"
#include "src/common/strings.h"
#include "src/minizk/client.h"
#include "src/minizk/ir_model.h"
#include "src/minizk/server.h"

int main() {
  wdg::RealClock& clock = wdg::RealClock::Instance();
  wdg::FaultInjector injector(clock);
  wdg::SimDisk disk(clock, injector);
  wdg::SimNet net(clock, injector);

  minizk::ZkFollower follower(clock, net, "zk-f1");
  follower.Start();
  minizk::ZkOptions options;
  options.node_id = "zk-leader";
  options.followers = {"zk-f1"};
  minizk::ZkNode leader(clock, disk, net, options);
  if (!leader.Start().ok()) {
    return 1;
  }

  awd::OpExecutorRegistry registry;
  minizk::RegisterOpExecutors(registry, leader);
  wdg::WatchdogDriver::Options driver_options;
  driver_options.release_on_stop = [&injector] { injector.ClearAll(); };
  wdg::WatchdogDriver driver(clock, driver_options);
  awd::GenerationOptions gen;
  gen.checker.interval = wdg::Ms(50);
  gen.checker.timeout = wdg::Ms(300);
  awd::Generate(minizk::DescribeIr(options), leader.hooks(), registry, driver, gen);
  if (const wdg::Status st = driver.Start(); !st.ok()) {
    std::fprintf(stderr, "driver Start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  minizk::ZkClient client(net, "app", "zk-leader", wdg::Ms(300));
  std::printf("cluster up: leader + follower, watchdog generated and running\n");
  (void)client.Create("/config/db", "primary=host-a");
  (void)client.Create("/config/cache", "ttl=60");
  std::printf("wrote two znodes; processor committed %lld txns\n",
              static_cast<long long>(leader.processor().committed()));
  clock.SleepFor(wdg::Ms(100));

  std::printf("\n>>> network issue: the leader->follower sync link hangs <<<\n\n");
  wdg::FaultSpec hang;
  hang.id = "zk2201";
  hang.site_pattern = "net.send.zk-f1";
  hang.kind = wdg::FaultKind::kHang;
  injector.Inject(hang);

  std::printf("operator's view of the leader during the failure:\n");
  const wdg::Status write = client.Set("/config/db", "primary=host-b");
  std::printf("  write /config/db .... %s\n", write.ToString().c_str());
  const auto read = client.Get("/config/db");
  std::printf("  read  /config/db .... %s\n", read.ok() ? read->c_str() : "FAILED");
  const auto ruok = client.Ruok();
  std::printf("  admin 'ruok' ........ %s\n", ruok.ok() ? ruok->c_str() : "no answer");
  const int64_t pings = leader.pings_acked();
  clock.SleepFor(wdg::Ms(120));
  std::printf("  session heartbeats .. %s (%lld -> %lld acks)\n",
              leader.pings_acked() > pings ? "flowing" : "STOPPED",
              static_cast<long long>(pings), static_cast<long long>(leader.pings_acked()));

  std::printf("\nwaiting for the watchdog...\n");
  if (driver.WaitForFailure(wdg::Sec(5))) {
    const auto failure = *driver.FirstFailure();
    std::printf("  WATCHDOG: %s\n", failure.ToString().c_str());
    std::printf("  context for reproduction: %s\n", failure.context_dump.c_str());
    std::printf("\nthe write pipeline is wedged inside ProcessWrite's critical section —\n"
                "exactly what ZOOKEEPER-2201's operators spent hours discovering by hand.\n");
  }

  injector.ClearAll();
  clock.SleepFor(wdg::Ms(200));
  const wdg::Status recovered = client.Set("/config/db", "primary=host-b");
  std::printf("\nnetwork restored; retry write: %s\n", recovered.ToString().c_str());

  (void)driver.Stop();
  leader.Stop();
  follower.Stop();
  return 0;
}
