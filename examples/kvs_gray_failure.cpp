// Gray-failure walkthrough on kvs: a fail-slow disk and a wedged compaction,
// the two classic "the process looks fine" failures from the paper's intro.
// Shows why heartbeats and client probes miss them while the generated mimic
// watchdog catches both and names the failing operation.
#include <cstdio>

#include "src/autowd/autowatchdog.h"
#include "src/common/strings.h"
#include "src/detectors/heartbeat.h"
#include "src/kvs/client.h"
#include "src/kvs/ir_model.h"
#include "src/kvs/server.h"

namespace {

void Banner(const char* text) { std::printf("\n--- %s ---\n", text); }

}  // namespace

int main() {
  wdg::RealClock& clock = wdg::RealClock::Instance();
  wdg::FaultInjector injector(clock);
  wdg::DiskOptions disk_options;
  disk_options.base_latency = wdg::Us(20);
  wdg::SimDisk disk(clock, injector, disk_options);
  wdg::SimNet net(clock, injector);

  kvs::KvsOptions follower_options;
  follower_options.node_id = "kvs2";
  kvs::KvsNode follower(clock, disk, net, follower_options);
  (void)follower.Start();

  kvs::KvsOptions options;
  options.node_id = "kvs1";
  options.followers = {"kvs2"};
  options.heartbeat_target = "monitor";
  options.heartbeat_interval = wdg::Ms(20);
  options.flush_threshold_bytes = 512;
  options.flush_poll = wdg::Ms(10);
  options.compaction_max_tables = 3;
  options.compaction_poll = wdg::Ms(20);
  kvs::KvsNode node(clock, disk, net, options);
  (void)node.Start();

  // Baseline detector: heartbeat crash FD.
  wdg::HeartbeatDetectorOptions hb_options;
  hb_options.suspicion_timeout = wdg::Ms(120);
  wdg::HeartbeatDetector heartbeat(clock, net, hb_options);
  heartbeat.Track("kvs1");
  heartbeat.Start();

  // The generated watchdog.
  awd::OpExecutorRegistry registry;
  kvs::RegisterOpExecutors(registry, node);
  wdg::WatchdogDriver::Options driver_options;
  driver_options.release_on_stop = [&injector] { injector.ClearAll(); };
  wdg::WatchdogDriver driver(clock, driver_options);
  awd::GenerationOptions gen;
  gen.checker.interval = wdg::Ms(25);
  gen.checker.timeout = wdg::Ms(300);
  awd::Generate(kvs::DescribeIr(node.options()), node.hooks(), registry, driver, gen);
  if (const wdg::Status st = driver.Start(); !st.ok()) {
    std::fprintf(stderr, "driver Start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  kvs::KvsClient client(net, "app", "kvs1", wdg::Ms(400));
  for (int i = 0; i < 60; ++i) {
    (void)client.Set(wdg::StrFormat("k%03d", i), std::string(64, 'd'));
  }
  clock.SleepFor(wdg::Ms(200));

  Banner("failure 1: fail-slow disk (limplock)");
  std::printf("the disk now takes 400ms per op — not dead, just limping\n");
  wdg::FaultSpec limp;
  limp.id = "limp";
  limp.site_pattern = "disk.write";
  limp.kind = wdg::FaultKind::kDelay;
  limp.delay = wdg::Ms(400);
  injector.Inject(limp);

  (void)client.Set("during-limp", "value");
  std::printf("client SET during limplock: ok (memtable absorbs it)\n");
  if (driver.WaitForFailure(wdg::Sec(3), [](const wdg::FailureSignature& sig) {
        return sig.location.op_site == "disk.write";
      })) {
    for (const auto& sig : driver.Failures()) {
      if (sig.location.op_site == "disk.write") {
        std::printf("watchdog: %s\n", sig.ToString().c_str());
        break;
      }
    }
  }
  std::printf("heartbeat detector: %s\n",
              heartbeat.Suspects("kvs1") ? "SUSPECTS (unexpected)" : "leader looks healthy");
  injector.Remove("limp");
  clock.SleepFor(wdg::Ms(300));

  Banner("failure 2: compaction task wedges");
  std::printf("the background compaction merge hangs — clients see nothing\n");
  wdg::FaultSpec stuck;
  stuck.id = "stuck";
  stuck.site_pattern = "compact.merge";
  stuck.kind = wdg::FaultKind::kHang;
  injector.Inject(stuck);

  (void)client.Set("during-hang", "value");
  const auto read = client.Get("during-hang");
  std::printf("client SET+GET during the hang: %s\n", read.ok() ? "ok" : "failed");
  if (driver.WaitForFailure(wdg::Sec(4), [](const wdg::FailureSignature& sig) {
        return sig.location.op_site == "compact.merge";
      })) {
    for (const auto& sig : driver.Failures()) {
      if (sig.location.op_site == "compact.merge") {
        std::printf("watchdog: %s\n", sig.ToString().c_str());
        break;
      }
    }
  }
  std::printf("heartbeat detector: %s\n",
              heartbeat.Suspects("kvs1") ? "SUSPECTS (unexpected)" : "leader looks healthy");

  injector.ClearAll();
  (void)driver.Stop();
  heartbeat.Stop();
  node.Stop();
  follower.Stop();
  std::printf("\ndone: both gray failures caught by the watchdog, both invisible to the "
              "crash FD.\n");
  return 0;
}
