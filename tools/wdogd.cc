// wdogd: run the out-of-process supervisor scenario from the command line.
//
// Boots a system node (kvs by default) plus its in-process watchdog driver
// as one supervised "process", injects a disk hang that wedges both the main
// program and the checker path the driver uses to prove liveness, and lets
// wdogd walk the escalation ladder: warn → restart (respawn budget) →
// reboot-equivalent. Prints the reset-cause journal and detection latency,
// and writes BENCH_supervisor.json for the trend gate.
//
//   wdogd [--system kvs|minizk|minihdfs] [--all] [--quick]
//         [--out BENCH_supervisor.json]
//
// Exit: 0 when every trial escalated (the scenario is useless if the
// supervisor misses a wedged process), 1 otherwise, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/eval/supervised.h"

namespace {

struct CliOptions {
  std::vector<wdg::SupervisedSystem> systems = {wdg::SupervisedSystem::kKvs};
  bool quick = false;
  std::string out = "BENCH_supervisor.json";
};

int Usage(std::FILE* stream) {
  std::fputs(
      "usage: wdogd [--system kvs|minizk|minihdfs] [--all] [--quick]\n"
      "             [--out FILE.json]\n",
      stream);
  return stream == stdout ? 0 : 2;
}

bool ParseSystem(const std::string& name, wdg::SupervisedSystem* out) {
  if (name == "kvs") {
    *out = wdg::SupervisedSystem::kKvs;
  } else if (name == "minizk") {
    *out = wdg::SupervisedSystem::kMinizk;
  } else if (name == "minihdfs") {
    *out = wdg::SupervisedSystem::kMinihdfs;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Usage(stdout);
    } else if (arg == "--quick") {
      cli.quick = true;
    } else if (arg == "--all") {
      cli.systems = {wdg::SupervisedSystem::kKvs, wdg::SupervisedSystem::kMinizk,
                     wdg::SupervisedSystem::kMinihdfs};
    } else if (arg == "--system" && i + 1 < argc) {
      wdg::SupervisedSystem system;
      if (!ParseSystem(argv[++i], &system)) {
        std::fprintf(stderr, "wdogd: unknown system '%s'\n", argv[i]);
        return Usage(stderr);
      }
      cli.systems = {system};
    } else if (arg == "--out" && i + 1 < argc) {
      cli.out = argv[++i];
    } else {
      std::fprintf(stderr, "wdogd: unknown flag '%s'\n", arg.c_str());
      return Usage(stderr);
    }
  }

  bool all_escalated = true;
  std::string json = "{\n  \"configs\": [\n";
  for (size_t i = 0; i < cli.systems.size(); ++i) {
    wdg::SupervisedTrialOptions options;
    options.system = cli.systems[i];
    if (cli.quick) {
      // One restart is enough for a smoke signal; skip the budget walk.
      options.policy.max_respawns = 1;
      options.observe = wdg::Sec(2);
    }
    const char* name = wdg::SupervisedSystemName(options.system);
    std::printf("== %s: injecting disk hang under wdogd supervision...\n", name);
    std::fflush(stdout);
    const wdg::TrialResult result = wdg::RunSupervisedTrial(options);

    const double latency_ms =
        static_cast<double>(result.supervisor_detection_latency) / 1e6;
    std::printf("   escalated:          %s\n", result.supervisor_escalated ? "yes" : "NO");
    std::printf("   detection latency:  %.1f ms\n", latency_ms);
    std::printf("   ladder:             %lld warn(s), %lld restart(s), %lld reboot(s)\n",
                static_cast<long long>(result.supervisor_warns),
                static_cast<long long>(result.supervisor_restarts),
                static_cast<long long>(result.supervisor_reboots));
    std::printf("   reset-cause journal:\n");
    for (const std::string& cause : result.reset_causes) {
      std::printf("     - %s\n", cause.c_str());
    }
    all_escalated = all_escalated && result.supervisor_escalated;

    json += wdg::StrFormat(
        "    {\"system\": \"%s\", \"detection_latency_ms\": %.3f, "
        "\"warns\": %lld, \"restarts\": %lld, \"reboots\": %lld}%s\n",
        name, latency_ms, static_cast<long long>(result.supervisor_warns),
        static_cast<long long>(result.supervisor_restarts),
        static_cast<long long>(result.supervisor_reboots),
        i + 1 < cli.systems.size() ? "," : "");
  }
  json += "  ]\n}\n";

  if (std::FILE* f = std::fopen(cli.out.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", cli.out.c_str());
  } else {
    std::fprintf(stderr, "wdogd: cannot write %s\n", cli.out.c_str());
    return 2;
  }

  if (!all_escalated) {
    std::fprintf(stderr, "wdogd: a wedged process was NOT escalated — supervisor broken\n");
    return 1;
  }
  return 0;
}
