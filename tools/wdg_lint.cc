// wdg_lint: the static verification gate (docs/LINT.md).
//
// Runs every wdg-lint pass family — IR well-formedness, lock discipline,
// isolation, hook-plan soundness — over the kvs, minizk and minihdfs
// DescribeIr() models and their generated hook plans, prints findings with
// severity and pinpointed <function>:<instr_id> locations, and exits nonzero
// when any error survives the policy. Registered with ctest so a bad IR
// model fails the build.
//
//   wdg_lint [--system kvs|minizk|minihdfs|all] [--fixture good|bad]
//            [--warnings-as-errors] [--disable-rule R] [--suppress LOC]
//            [--notes] [--summary]
//
// Examples:
//   wdg_lint                             # lint all three systems
//   wdg_lint --system minizk --notes     # include informational findings
//   wdg_lint --fixture bad               # seeded-broken module; must fail
//   wdg_lint --disable-rule ir.unused-def --suppress "FlushMemtable:3"
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/autowd/lint.h"
#include "src/ir/verifier.h"
#include "src/kvs/ir_model.h"
#include "src/minihdfs/ir_model.h"
#include "src/minizk/ir_model.h"

namespace {

struct CliOptions {
  std::string system = "all";
  std::string fixture = "good";
  awd::LintPolicy policy;
  bool show_notes = false;
  bool summary_only = false;
};

void PrintUsage() {
  std::printf(
      "usage: wdg_lint [--system kvs|minizk|minihdfs|all] [--fixture good|bad]\n"
      "                [--warnings-as-errors] [--disable-rule R] [--suppress LOC]\n"
      "                [--notes] [--summary]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--system") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      options.system = value;
      if (options.system != "all" && options.system != "kvs" &&
          options.system != "minizk" && options.system != "minihdfs") {
        std::fprintf(stderr, "wdg_lint: unknown system '%s'\n",
                     options.system.c_str());
        return false;
      }
    } else if (arg == "--fixture") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      options.fixture = value;
      if (options.fixture != "good" && options.fixture != "bad") {
        std::fprintf(stderr, "wdg_lint: unknown fixture '%s'\n",
                     options.fixture.c_str());
        return false;
      }
    } else if (arg == "--disable-rule") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      options.policy.disabled_rules.insert(value);
    } else if (arg == "--suppress") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      options.policy.suppressed_locations.insert(value);
    } else if (arg == "--warnings-as-errors") {
      options.policy.warnings_as_errors = true;
    } else if (arg == "--notes") {
      options.show_notes = true;
    } else if (arg == "--summary") {
      options.summary_only = true;
    } else {
      PrintUsage();
      return false;
    }
  }
  return true;
}

// Deliberately-broken module proving every IR-level pass fires: unbalanced
// loop, leaked lock, dangling call, use-before-def, unused def, duplicate
// ids, opposite-order lock acquisition, and (with the empty redirection plan
// it is linted against) unredirected destructive ops.
awd::Module BadFixture() {
  using awd::FunctionBuilder;
  using awd::OpKind;
  awd::Module module("bad_fixture");

  module.AddFunction(FunctionBuilder("BrokenLoop", "fixture")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kLockAcquire, "lock.a", {}, {}, "never released")
                         .Op(OpKind::kIoWrite, "disk.write", {"payload"}, {},
                             "destructive, unredirected")
                         .Call("MissingHandler", {"payload"})
                         .Build());  // LoopEnd intentionally missing

  module.AddFunction(FunctionBuilder("UseBeforeDef", "fixture")
                         .Compute("consume x before it exists", {"x"}, {})
                         .Compute("define x too late", {}, {"x"})
                         .Compute("dead value", {}, {"never_read"})
                         .Return()
                         .Build());

  module.AddFunction(FunctionBuilder("OrderAB", "fixture")
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("OrderBA", "fixture")
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.c")
                         .Return()
                         .Build());

  awd::Function duplicate_ids = FunctionBuilder("DuplicateIds", "fixture")
                                    .Compute("first", {}, {"v"})
                                    .Compute("second", {"v"}, {})
                                    .Return()
                                    .Build();
  duplicate_ids.instrs[1].id = duplicate_ids.instrs[0].id;
  module.AddFunction(std::move(duplicate_ids));

  return module;
}

int LintOne(const std::string& name, const awd::Module& module,
            const awd::RedirectionPlan& redirections, const CliOptions& options) {
  const awd::LintResult result = awd::LintModule(module, redirections, options.policy);

  std::printf("== %s ==\n", name.c_str());
  if (!options.summary_only) {
    for (const awd::Finding& finding : result.findings) {
      if (finding.severity == awd::Severity::kNote && !options.show_notes) {
        continue;
      }
      std::printf("  %s\n", finding.ToString().c_str());
    }
  }
  std::printf(
      "%s: %d reduced checkers, %d hooks planned — %d error(s), %d warning(s), "
      "%d note(s)\n",
      name.c_str(), static_cast<int>(result.program.functions.size()),
      static_cast<int>(result.plan.points.size()), result.errors, result.warnings,
      result.notes);
  return result.errors;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, options)) {
    return 2;
  }

  int errors = 0;
  if (options.fixture == "bad") {
    // Linted against an empty redirection plan: nothing is declared safe.
    errors += LintOne("bad_fixture", BadFixture(), awd::RedirectionPlan{}, options);
  } else {
    // Representative leader/pipeline configurations so the replication and
    // downstream sites exist in the models.
    if (options.system == "all" || options.system == "kvs") {
      kvs::KvsOptions kvs_options;
      kvs_options.followers = {"kvs2", "kvs3"};
      errors += LintOne("kvs", kvs::DescribeIr(kvs_options), kvs::DescribeRedirections(),
                        options);
    }
    if (options.system == "all" || options.system == "minizk") {
      minizk::ZkOptions zk_options;
      zk_options.followers = {"zk-f1", "zk-f2"};
      errors += LintOne("minizk", minizk::DescribeIr(zk_options),
                        minizk::DescribeRedirections(), options);
    }
    if (options.system == "all" || options.system == "minihdfs") {
      minihdfs::DataNodeOptions dn_options;
      dn_options.downstream = "dn2";
      errors += LintOne("minihdfs", minihdfs::DescribeIr(dn_options),
                        minihdfs::DescribeRedirections(), options);
    }
  }

  if (errors > 0) {
    std::printf("wdg_lint: FAILED with %d error(s)\n", errors);
    return 1;
  }
  std::printf("wdg_lint: clean\n");
  return 0;
}
