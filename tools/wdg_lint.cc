// wdg_lint: the static verification gate (docs/LINT.md).
//
// Runs every wdg-lint pass family — IR well-formedness, lock discipline,
// interprocedural lock order, isolation, effect/escape proofs, hook-plan
// soundness, hook-context races, static cost estimates — over the kvs,
// minizk and minihdfs DescribeIr() models and their generated hook plans,
// prints findings with severity and pinpointed <function>:<instr_id>
// locations, and exits nonzero when any error survives the policy.
// Registered with ctest so a bad IR model fails the build.
//
//   wdg_lint [--system kvs|minizk|minihdfs|all] [--fixture good|bad]
//            [--warnings-as-errors] [--disable-rule R] [--suppress LOC]
//            [--notes] [--summary] [--format text|json] [--emit-costs]
//
// Examples:
//   wdg_lint                             # lint all three systems
//   wdg_lint --system minizk --notes     # include informational findings
//   wdg_lint --fixture bad               # seeded-broken module; must fail
//   wdg_lint --format json               # machine-readable findings
//   wdg_lint --emit-costs                # static per-checker cost annotations
//   wdg_lint --disable-rule ir.unused-def --suppress "FlushMemtable:3"
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/autowd/cost.h"
#include "src/autowd/lint.h"
#include "src/common/strings.h"
#include "src/ir/verifier.h"
#include "src/kvs/ir_model.h"
#include "src/minihdfs/ir_model.h"
#include "src/minizk/ir_model.h"

namespace {

struct CliOptions {
  std::string system = "all";
  std::string fixture = "good";
  std::string format = "text";
  awd::LintPolicy policy;
  bool show_notes = false;
  bool summary_only = false;
  bool emit_costs = false;
};

void PrintUsage() {
  std::printf(
      "usage: wdg_lint [--system kvs|minizk|minihdfs|all] [--fixture good|bad]\n"
      "                [--warnings-as-errors] [--disable-rule R] [--suppress LOC]\n"
      "                [--notes] [--summary] [--format text|json] [--emit-costs]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--system") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      options.system = value;
      if (options.system != "all" && options.system != "kvs" &&
          options.system != "minizk" && options.system != "minihdfs") {
        std::fprintf(stderr, "wdg_lint: unknown system '%s'\n",
                     options.system.c_str());
        return false;
      }
    } else if (arg == "--fixture") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      options.fixture = value;
      if (options.fixture != "good" && options.fixture != "bad") {
        std::fprintf(stderr, "wdg_lint: unknown fixture '%s'\n",
                     options.fixture.c_str());
        return false;
      }
    } else if (arg == "--format") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      options.format = value;
      if (options.format != "text" && options.format != "json") {
        std::fprintf(stderr, "wdg_lint: unknown format '%s'\n", options.format.c_str());
        return false;
      }
    } else if (arg == "--disable-rule") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      options.policy.disabled_rules.insert(value);
    } else if (arg == "--suppress") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      options.policy.suppressed_locations.insert(value);
    } else if (arg == "--warnings-as-errors") {
      options.policy.warnings_as_errors = true;
    } else if (arg == "--notes") {
      options.show_notes = true;
    } else if (arg == "--summary") {
      options.summary_only = true;
    } else if (arg == "--emit-costs") {
      options.emit_costs = true;
    } else {
      PrintUsage();
      return false;
    }
  }
  return true;
}

// Deliberately-broken module proving every pass family fires: unbalanced
// loop, leaked lock, dangling call, use-before-def, unused def, duplicate
// ids, opposite-order lock acquisition, and (with the empty redirection plan
// it is linted against) unredirected destructive ops — plus the three
// interprocedural seeds the per-frame passes provably miss:
//
//   DeepEscapeLoop → Deep1 → ... → Deep17 → disk write. One call deeper
//   than the reducer's max_call_depth, so the write never reaches the
//   reduced program and iso.* stays silent; effect.escape must catch it.
//
//   RecursiveHold acquires lock.r, calls itself with the lock held, then
//   releases. The cycle detector drops self-edges and lock.reacquire only
//   sees the current frame, so only lock.interproc-order (cross-frame
//   reacquire) fires.
//
//   RaceRootA calls SharedCapture holding lock.x; RaceRootB calls it with
//   no lock. The hook capturing SharedCapture's context fires from both
//   threads under disjoint locksets — race.hook-context.
awd::Module BadFixture() {
  using awd::FunctionBuilder;
  using awd::OpKind;
  awd::Module module("bad_fixture");

  module.AddFunction(FunctionBuilder("BrokenLoop", "fixture")
                         .LongRunning()
                         .LoopBegin()
                         .Op(OpKind::kLockAcquire, "lock.a", {}, {}, "never released")
                         .Op(OpKind::kIoWrite, "disk.write", {"payload"}, {},
                             "destructive, unredirected")
                         .Call("MissingHandler", {"payload"})
                         .Build());  // LoopEnd intentionally missing

  module.AddFunction(FunctionBuilder("UseBeforeDef", "fixture")
                         .Compute("consume x before it exists", {"x"}, {})
                         .Compute("define x too late", {}, {"x"})
                         .Compute("dead value", {}, {"never_read"})
                         .Return()
                         .Build());

  module.AddFunction(FunctionBuilder("OrderAB", "fixture")
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("OrderBA", "fixture")
                         .Op(OpKind::kLockAcquire, "lock.b")
                         .Op(OpKind::kLockAcquire, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.a")
                         .Op(OpKind::kLockRelease, "lock.b")
                         .Op(OpKind::kLockRelease, "lock.c")
                         .Return()
                         .Build());

  awd::Function duplicate_ids = FunctionBuilder("DuplicateIds", "fixture")
                                    .Compute("first", {}, {"v"})
                                    .Compute("second", {"v"}, {})
                                    .Return()
                                    .Build();
  duplicate_ids.instrs[1].id = duplicate_ids.instrs[0].id;
  module.AddFunction(std::move(duplicate_ids));

  // effect.escape seed: one call past the reducer's depth bound.
  module.AddFunction(FunctionBuilder("DeepEscapeLoop", "fixture")
                         .LongRunning()
                         .LoopBegin()
                         .Call("Deep1", {})
                         .LoopEnd()
                         .Return()
                         .Build());
  for (int depth = 1; depth <= 16; ++depth) {
    module.AddFunction(
        FunctionBuilder("Deep" + std::to_string(depth), "fixture")
            .Call("Deep" + std::to_string(depth + 1), {})
            .Return()
            .Build());
  }
  module.AddFunction(FunctionBuilder("Deep17", "fixture")
                         .Op(OpKind::kIoWrite, "disk.deep", {}, {},
                             "beyond the reducer's horizon")
                         .Return()
                         .Build());

  // lock.interproc-order seed: held across a self-call.
  module.AddFunction(FunctionBuilder("RecursiveHold", "fixture")
                         .Op(OpKind::kLockAcquire, "lock.r")
                         .Call("RecursiveHold", {})
                         .Op(OpKind::kLockRelease, "lock.r")
                         .Return()
                         .Build());

  // race.hook-context seed: two roots, disjoint locksets, shared hook site.
  module.AddFunction(FunctionBuilder("RaceRootA", "fixture")
                         .LongRunning()
                         .Op(OpKind::kLockAcquire, "lock.x")
                         .Call("SharedCapture", {})
                         .Op(OpKind::kLockRelease, "lock.x")
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("RaceRootB", "fixture")
                         .LongRunning()
                         .Op(OpKind::kNetRecv, "net.race", {}, {"req"})
                         .Call("SharedCapture", {})
                         .Return()
                         .Build());
  module.AddFunction(FunctionBuilder("SharedCapture", "fixture")
                         .Compute("stage value", {}, {"v"})
                         .Op(OpKind::kIoRead, "disk.race", {"v"}, {})
                         .Return()
                         .Build());

  return module;
}

struct SystemResult {
  std::string name;
  awd::LintResult lint;
  std::vector<awd::CheckerCostEstimate> costs;
};

SystemResult LintOne(const std::string& name, const awd::Module& module,
                     const awd::RedirectionPlan& redirections, const CliOptions& options) {
  SystemResult result;
  result.name = name;
  result.lint = awd::LintModule(module, redirections, options.policy);
  if (options.emit_costs) {
    result.costs = awd::EstimateCheckerCosts(module, result.lint.program);
  }
  return result;
}

void PrintText(const SystemResult& result, const CliOptions& options) {
  std::printf("== %s ==\n", result.name.c_str());
  if (!options.summary_only) {
    for (const awd::Finding& finding : result.lint.findings) {
      if (finding.severity == awd::Severity::kNote && !options.show_notes) {
        continue;
      }
      std::printf("  %s\n", finding.ToString().c_str());
    }
  }
  std::printf(
      "%s: %d reduced checkers, %d hooks planned — %d error(s), %d warning(s), "
      "%d note(s)\n",
      result.name.c_str(), static_cast<int>(result.lint.program.functions.size()),
      static_cast<int>(result.lint.plan.points.size()), result.lint.errors,
      result.lint.warnings, result.lint.notes);
  if (options.emit_costs) {
    std::printf("%s costs: %s\n", result.name.c_str(),
                awd::FormatCostsJson(result.costs).c_str());
  }
}

// One JSON object per system; findings use the same schema as
// awd::FindingToJson, costs the same as awd::FormatCostsJson.
std::string ToJson(const SystemResult& result, const CliOptions& options) {
  std::string out = wdg::StrFormat(
      "  {\n"
      "    \"system\": \"%s\",\n"
      "    \"checkers\": %d,\n"
      "    \"hooks\": %d,\n"
      "    \"errors\": %d,\n"
      "    \"warnings\": %d,\n"
      "    \"notes\": %d,\n"
      "    \"findings\": [",
      wdg::JsonEscape(result.name).c_str(),
      static_cast<int>(result.lint.program.functions.size()),
      static_cast<int>(result.lint.plan.points.size()), result.lint.errors,
      result.lint.warnings, result.lint.notes);
  bool first = true;
  for (const awd::Finding& finding : result.lint.findings) {
    if (finding.severity == awd::Severity::kNote && !options.show_notes) {
      continue;
    }
    out += first ? "\n      " : ",\n      ";
    out += awd::FindingToJson(finding);
    first = false;
  }
  out += first ? "]" : "\n    ]";
  if (options.emit_costs) {
    out += ",\n    \"costs\": ";
    std::string costs = awd::FormatCostsJson(result.costs);
    // Re-indent the nested array so the combined document stays readable.
    std::string indented;
    for (const char ch : costs) {
      indented += ch;
      if (ch == '\n') {
        indented += "    ";
      }
    }
    out += indented;
  }
  out += "\n  }";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, options)) {
    return 2;
  }

  std::vector<SystemResult> results;
  if (options.fixture == "bad") {
    // Linted against an empty redirection plan: nothing is declared safe.
    results.push_back(LintOne("bad_fixture", BadFixture(), awd::RedirectionPlan{}, options));
  } else {
    // Representative leader/pipeline configurations so the replication and
    // downstream sites exist in the models.
    if (options.system == "all" || options.system == "kvs") {
      kvs::KvsOptions kvs_options;
      kvs_options.followers = {"kvs2", "kvs3"};
      results.push_back(LintOne("kvs", kvs::DescribeIr(kvs_options),
                                kvs::DescribeRedirections(), options));
    }
    if (options.system == "all" || options.system == "minizk") {
      minizk::ZkOptions zk_options;
      zk_options.followers = {"zk-f1", "zk-f2"};
      results.push_back(LintOne("minizk", minizk::DescribeIr(zk_options),
                                minizk::DescribeRedirections(), options));
    }
    if (options.system == "all" || options.system == "minihdfs") {
      minihdfs::DataNodeOptions dn_options;
      dn_options.downstream = "dn2";
      results.push_back(LintOne("minihdfs", minihdfs::DescribeIr(dn_options),
                                minihdfs::DescribeRedirections(), options));
    }
  }

  int errors = 0;
  if (options.format == "json") {
    std::printf("[\n");
    for (size_t i = 0; i < results.size(); ++i) {
      std::printf("%s%s\n", ToJson(results[i], options).c_str(),
                  i + 1 < results.size() ? "," : "");
      errors += results[i].lint.errors;
    }
    std::printf("]\n");
    return errors > 0 ? 1 : 0;
  }

  for (const SystemResult& result : results) {
    PrintText(result, options);
    errors += result.lint.errors;
  }
  if (errors > 0) {
    std::printf("wdg_lint: FAILED with %d error(s)\n", errors);
    return 1;
  }
  std::printf("wdg_lint: clean\n");
  return 0;
}
