#!/usr/bin/env python3
"""Append the latest bench results to BENCH_TREND.json and gate regressions.

Reads the per-bench JSON artifacts the bench binaries emit
(BENCH_driver_scale.json, BENCH_context_read.json), extracts a small set of
tracked headline metrics, and appends one trend entry:

    {"sha": ..., "timestamp": ..., "metrics": {name: value, ...}}

Before appending, each metric is compared against the BEST value it reached in
the last WINDOW trend entries (direction-aware: throughput should not drop,
latency should not grow). A metric more than --threshold (default 25%, env
WDG_BENCH_TREND_THRESHOLD) worse than its recent best fails the run WITHOUT
appending, so a regressed build can't poison its own baseline. Comparing
against best-of-window rather than the previous run keeps one noisy CI box
sample from ratcheting the baseline downward.

Two more guards: a metric gated by a recent trend entry that this run could
not collect at all fails the gate (--allow-missing waives it when retiring a
metric deliberately), and appending from an uncommitted tree collapses
consecutive trailing entries with the same "<sha>+dirty" tag so repeated
dirty-tree runs keep only their latest measurement.

One-core CI boxes measure some latencies with run-to-run spread well past the
25% gate (p99 queue delay has ranged 54-548 us across identical binaries).
The old workaround was a hand-edited threshold override; the supported paths
are now (a) --repeat N --pick best: re-run the bench N times (--bench-cmd says
how) and fold each metric direction-aware across rounds before gating, so the
gate compares best-observed capability instead of one noisy sample, and (b) a
per-metric noise factor in TRACKED that widens the gate for metrics whose
honest run-to-run spread exceeds the default threshold (the CI dry-run reads
single-sample committed artifacts and cannot fold rounds).

Usage:  tools/bench_trend.py [--repo-root DIR] [--threshold 0.25] [--dry-run]
                             [--allow-missing METRIC]...
                             [--repeat N --pick {best,last}
                              --bench-cmd CMD ...]
Exit:   0 appended (or nothing to do with --dry-run), 1 regression or
        vanished metric, 2 no input.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys

# (metric name, source file, extractor, direction[, noise]). Direction "up" =
# bigger is better (throughput); "down" = smaller is better (latency). The
# optional noise factor widens this metric's gate to threshold*noise: p99
# queue delays on the one-core CI box swing 3-10x across identical binaries
# (see the module docstring), so a 25% gate on them fails honest runs —
# trend history shows 12.9 vs 21.4 ms for the same 1M-fleet binary. 8x
# (= +200% at the default threshold) tolerates that scheduler noise while
# still catching the ~10x lock-convoy regressions these gates exist for;
# throughput and timeout-driven detection latencies stay at 1x.
TRACKED = [
    ("driver_pooled_checks_per_sec_256",
     "BENCH_driver_scale.json",
     lambda d: _config(d, checkers=256, mode="pooled")["checks_per_sec"],
     "up"),
    ("driver_pooled_p99_queue_delay_us_256",
     "BENCH_driver_scale.json",
     lambda d: _config(d, checkers=256, mode="pooled")["p99_queue_delay_us"],
     "down", 8.0),
    ("driver_adaptive_p99_queue_delay_us_256",
     "BENCH_driver_scale.json",
     lambda d: _config(d, checkers=256, mode="adaptive")["p99_queue_delay_us"],
     "down", 8.0),
    ("driver_pooled_storm_p99_queue_delay_us_256",
     "BENCH_driver_scale.json",
     lambda d: _config(d, checkers=256, mode="pooled-storm")["p99_queue_delay_us"],
     "down", 8.0),
    ("context_get_p50_ns_8r",
     "BENCH_context_read.json",
     lambda d: _config(d, readers=8)["get_p50_ns"],
     "down"),
    ("context_snapshot_p50_ns_8r",
     "BENCH_context_read.json",
     lambda d: _config(d, readers=8)["snapshot_p50_ns"],
     "down"),
    ("supervisor_detection_latency_ms_kvs",
     "BENCH_supervisor.json",
     lambda d: _config(d, system="kvs")["detection_latency_ms"],
     "down"),
    ("driver_sharded_checks_per_sec_10k",
     "BENCH_driver_scale.json",
     lambda d: _config(d, checkers=10000, mode="sharded")["checks_per_sec"],
     "up"),
    ("driver_sharded_p99_queue_delay_us_10k",
     "BENCH_driver_scale.json",
     lambda d: _config(d, checkers=10000, mode="sharded")["p99_queue_delay_us"],
     "down", 8.0),
    ("driver_sharded_checks_per_sec_1m",
     "BENCH_driver_scale.json",
     lambda d: _config(d, checkers=1000000, mode="sharded")["checks_per_sec"],
     "up"),
    ("driver_sharded_p99_queue_delay_us_1m",
     "BENCH_driver_scale.json",
     lambda d: _config(d, checkers=1000000, mode="sharded")["p99_queue_delay_us"],
     "down", 8.0),
    ("fusion_detection_latency_ms_kvs",
     "BENCH_fusion.json",
     lambda d: _config(d, system="kvs", mode="fused")["detection_latency_ms"],
     "down", 6.0),
    ("fusion_false_positive_rate",
     "BENCH_fusion.json",
     lambda d: _config(d, system="kvs", mode="fused")["false_positive_rate"],
     "down"),
]

WINDOW = 3  # trend entries the regression gate compares against

# Per-metric gate widening (see the TRACKED comment); 1.0 when unspecified.
NOISES = {entry[0]: (entry[4] if len(entry) > 4 else 1.0) for entry in TRACKED}


def _config(doc, **want):
    for cfg in doc.get("configs", []):
        if all(cfg.get(k) == v for k, v in want.items()):
            return cfg
    raise KeyError(f"no config matching {want}")


def collect_metrics(root):
    metrics, directions = {}, {}
    for name, source, extract, direction in (entry[:4] for entry in TRACKED):
        path = os.path.join(root, source)
        if not os.path.exists(path):
            print(f"bench_trend: {source} missing, skipping {name}", file=sys.stderr)
            continue
        try:
            with open(path) as f:
                metrics[name] = extract(json.load(f))
            directions[name] = direction
        except (KeyError, json.JSONDecodeError) as err:
            print(f"bench_trend: could not read {name} from {source}: {err}",
                  file=sys.stderr)
    return metrics, directions


def collect_rounds(root, repeat, bench_cmds, pick):
    """Collect metrics over `repeat` rounds and fold them direction-aware.

    Each round first runs every --bench-cmd (regenerating the JSON artifacts),
    then extracts the tracked metrics. "best" keeps the best value a metric
    reached in any round (max for "up", min for "down"); "last" keeps the
    final round's value — the old single-sample behaviour.
    """
    rounds = []
    directions = {}
    for i in range(max(1, repeat)):
        for cmd in bench_cmds:
            print(f"bench_trend: round {i + 1}/{repeat}: {cmd}", file=sys.stderr)
            proc = subprocess.run(cmd, shell=True, cwd=root)
            if proc.returncode != 0:
                print(f"bench_trend: bench command failed ({proc.returncode}): "
                      f"{cmd}", file=sys.stderr)
                return None, None
        metrics, dirs = collect_metrics(root)
        rounds.append(metrics)
        directions.update(dirs)
    folded = {}
    for name in directions:
        seen = [r[name] for r in rounds if name in r]
        if not seen:
            continue
        if pick == "best":
            folded[name] = max(seen) if directions[name] == "up" else min(seen)
        else:
            folded[name] = seen[-1]
        if len(seen) > 1 and min(seen) != max(seen):
            print(f"bench_trend: {name} spread over {len(seen)} rounds: "
                  f"{min(seen):g}..{max(seen):g}, kept {folded[name]:g}",
                  file=sys.stderr)
    return folded, directions


def git_sha(root):
    try:
        sha = subprocess.run(["git", "rev-parse", "HEAD"], cwd=root, check=True,
                             capture_output=True, text=True).stdout.strip()
        dirty = subprocess.run(["git", "status", "--porcelain"], cwd=root,
                               check=True, capture_output=True,
                               text=True).stdout.strip()
        return sha + ("+dirty" if dirty else "")
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def find_vanished(history, metrics, allow_missing):
    """Metrics gated by a recent trend entry but absent from this collection.

    A metric can vanish silently: a bench stops emitting its row, a config
    rename breaks the extractor, or a JSON artifact goes stale — and from then
    on the gate simply never compares it again. Treat a previously-gated
    metric that this run could not collect as a failure, unless explicitly
    waived with --allow-missing (e.g. when deliberately retiring a metric).
    """
    recent = history[-WINDOW:]
    gated_before = set()
    for entry in recent:
        gated_before.update(entry.get("metrics", {}))
    return sorted(gated_before - set(metrics) - set(allow_missing))


def dedup_dirty_head(history, sha):
    """Drop consecutive trailing entries carrying this same +dirty sha.

    Re-running the full bench on an uncommitted tree used to stack one trend
    entry per invocation, all with the identical "<sha>+dirty" tag — noise
    that both bloats the file and lets one dirty tree occupy the whole
    regression window with its own samples. Keep only the latest entry per
    consecutive dirty sha: the popped ones are superseded measurements of the
    same (uncommitted) code. Clean shas never collapse — each append is a
    distinct committed state worth trending.
    """
    popped = 0
    if sha.endswith("+dirty"):
        while history and history[-1].get("sha") == sha:
            history.pop()
            popped += 1
    return popped


def find_regressions(history, metrics, directions, threshold):
    regressions = []
    recent = history[-WINDOW:]
    for name, value in metrics.items():
        seen = [e["metrics"][name] for e in recent if name in e.get("metrics", {})]
        if not seen:
            # New metric with no baseline in the window: it cannot gate this
            # run, but say so out loud — a silent pass here once hid a metric
            # that was never being compared at all. The value still lands in
            # the appended entry and becomes the baseline for the next run.
            print(f"bench_trend: WARNING no baseline for {name} in last "
                  f"{WINDOW} entries; recording {value:g} as the new baseline",
                  file=sys.stderr)
            continue
        allowed = threshold * NOISES.get(name, 1.0)
        if directions[name] == "up":
            best = max(seen)
            if value < best * (1.0 - allowed):
                regressions.append(f"{name}: {value:g} vs recent best {best:g} "
                                   f"(-{(1 - value / best) * 100:.0f}%, gate "
                                   f"{allowed * 100:.0f}%)")
        else:
            best = min(seen)
            if value > best * (1.0 + allowed):
                regressions.append(f"{name}: {value:g} vs recent best {best:g} "
                                   f"(+{(value / best - 1) * 100:.0f}%, gate "
                                   f"{allowed * 100:.0f}%)")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root",
                        default=os.path.join(os.path.dirname(__file__), ".."))
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get("WDG_BENCH_TREND_THRESHOLD",
                                                     "0.25")))
    parser.add_argument("--dry-run", action="store_true",
                        help="gate only; do not append to the trend file")
    parser.add_argument("--allow-missing", action="append", default=[],
                        metavar="METRIC",
                        help="previously-gated metric allowed to be absent "
                             "from this collection (repeatable; use when "
                             "deliberately retiring a metric)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="collection rounds; with --bench-cmd each round "
                             "re-runs the benches first (default 1)")
    parser.add_argument("--pick", choices=["best", "last"], default="last",
                        help="how to fold a metric across rounds: 'best' is "
                             "direction-aware (max throughput / min latency), "
                             "'last' keeps the final round (default)")
    parser.add_argument("--bench-cmd", action="append", default=[],
                        metavar="CMD",
                        help="shell command run in the repo root before each "
                             "collection round to regenerate bench artifacts "
                             "(repeatable, runs in order)")
    args = parser.parse_args()
    root = os.path.abspath(args.repo_root)
    if args.repeat > 1 and not args.bench_cmd:
        print("bench_trend: WARNING --repeat without --bench-cmd re-reads the "
              "same artifacts every round; pass --bench-cmd to re-run benches",
              file=sys.stderr)

    metrics, directions = collect_rounds(root, args.repeat, args.bench_cmd,
                                         args.pick)
    if metrics is None:
        return 2
    if not metrics:
        print("bench_trend: no bench artifacts found; run the benches first",
              file=sys.stderr)
        return 2

    trend_path = os.path.join(root, "BENCH_TREND.json")
    history = []
    if os.path.exists(trend_path):
        with open(trend_path) as f:
            history = json.load(f)

    vanished = find_vanished(history, metrics, args.allow_missing)
    if vanished:
        print("bench_trend: previously-gated metrics missing from this "
              "collection (pass --allow-missing to retire deliberately):")
        for name in vanished:
            print(f"  {name}")
        return 1

    regressions = find_regressions(history, metrics, directions, args.threshold)
    if regressions:
        print(f"bench_trend: regression beyond {args.threshold:.0%} "
              f"(entry NOT appended):")
        for line in regressions:
            print(f"  {line}")
        return 1

    for name in sorted(metrics):
        print(f"bench_trend: {name} = {metrics[name]:g} ok")
    if args.dry_run:
        return 0
    sha = git_sha(root)
    popped = dedup_dirty_head(history, sha)
    if popped:
        print(f"bench_trend: collapsed {popped} superseded entr"
              f"{'y' if popped == 1 else 'ies'} for {sha}")
    history.append({
        "sha": sha,
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
                     .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "metrics": metrics,
    })
    with open(trend_path, "w") as f:
        json.dump(history, f, indent=2)
        f.write("\n")
    print(f"bench_trend: appended entry {len(history)} to BENCH_TREND.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
