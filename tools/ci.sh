#!/usr/bin/env bash
# CI gate: build + ctest twice — plain, then under address sanitizer — so the
# wdg_lint static checks and the sanitizer run on every PR.
#
#   tools/ci.sh [extra ctest args...]
#
# Build trees land in build-ci/ and build-ci-asan/ next to the source tree.
set -euo pipefail

cd "$(dirname "$0")/.."

run_leg() {
  local build_dir=$1 sanitize=$2
  shift 2
  local cmake_args=(-B "${build_dir}" -S .)
  if [[ -n "${sanitize}" ]]; then
    cmake_args+=("-DWDG_SANITIZE=${sanitize}")
  fi
  echo "=== configure ${build_dir} (sanitize='${sanitize}') ==="
  cmake "${cmake_args[@]}"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "$(nproc)"
  echo "=== ctest ${build_dir} ==="
  # until-pass:2 absorbs timing flakes in the concurrency-stress and campaign
  # suites under sanitizer slowdown + full parallelism; real failures fail twice.
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
    --repeat until-pass:2 "$@"
}

run_leg build-ci "" "$@"
run_leg build-ci-asan address "$@"

echo "ci: both legs green"
