#!/usr/bin/env bash
# CI gate: build + ctest three times — plain, under address sanitizer, and a
# thread-sanitizer leg focused on the context/hook synchronization hot path —
# so the wdg_lint static checks and both sanitizers run on every PR.
#
#   tools/ci.sh [extra ctest args...]
#
# Build trees land in build-ci/, build-ci-asan/, and build-ci-tsan/ next to
# the source tree.
set -euo pipefail

cd "$(dirname "$0")/.."

run_leg() {
  local build_dir=$1 sanitize=$2
  shift 2
  local cmake_args=(-B "${build_dir}" -S .)
  if [[ -n "${sanitize}" ]]; then
    cmake_args+=("-DWDG_SANITIZE=${sanitize}")
  fi
  echo "=== configure ${build_dir} (sanitize='${sanitize}') ==="
  cmake "${cmake_args[@]}"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "$(nproc)"
  echo "=== ctest ${build_dir} ==="
  # until-pass:2 absorbs timing flakes in the concurrency-stress and campaign
  # suites under sanitizer slowdown + full parallelism; real failures fail twice.
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
    --repeat until-pass:2 "$@"
}

run_leg build-ci "" "$@"
echo "=== bench smoke: driver scale ==="
# Quick pass over the pooled-executor bench so a scheduler/executor regression
# shows up as a CI diff in BENCH_driver_scale.json, not a silent perf slide.
./build-ci/bench/bench_driver_scale --quick
run_leg build-ci-asan address "$@"
# TSan leg: the concurrency suites that hammer the sharded context store and
# batched hook flush, plus the pooled scheduler/executor scale suite
# (abandonment, backpressure, and shutdown races).
run_leg build-ci-tsan thread -R 'context_concurrency|stress_test|driver_scale' "$@"

echo "ci: all three legs green"
