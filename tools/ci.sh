#!/usr/bin/env bash
# CI gate: build + ctest three times — plain, under address sanitizer, and a
# thread-sanitizer leg focused on the context/hook synchronization hot path —
# so the wdg_lint static checks and both sanitizers run on every PR.
#
#   tools/ci.sh [extra ctest args...]
#
# Build trees land in build-ci/, build-ci-asan/, and build-ci-tsan/ next to
# the source tree.
set -euo pipefail

cd "$(dirname "$0")/.."

# Guard: build trees must never be tracked. The seed once committed build/
# (743 generated files); fail loudly if any build artifact sneaks back into
# the index so it cannot land again.
if tracked_build=$(git ls-files -- 'build/*' 'build-*/*' 2>/dev/null) \
    && [[ -n "${tracked_build}" ]]; then
  echo "ci: build artifacts are tracked in git — run 'git rm -r --cached <dir>':" >&2
  echo "${tracked_build}" | head -20 >&2
  exit 1
fi

run_leg() {
  local build_dir=$1 sanitize=$2
  shift 2
  local cmake_args=(-B "${build_dir}" -S .)
  if [[ -n "${sanitize}" ]]; then
    cmake_args+=("-DWDG_SANITIZE=${sanitize}")
  fi
  echo "=== configure ${build_dir} (sanitize='${sanitize}') ==="
  cmake "${cmake_args[@]}"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "$(nproc)"
  echo "=== ctest ${build_dir} ==="
  # until-pass:2 absorbs timing flakes in the concurrency-stress and campaign
  # suites under sanitizer slowdown + full parallelism; real failures fail twice.
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
    --repeat until-pass:2 "$@"
}

run_leg build-ci "" "$@"
echo "=== lint leg: shipped IR models, warnings as errors ==="
# The ctest wdg_lint_models entry runs with default policy; this leg raises
# the bar for the shipped models — any warning (iso.*, race.hook-context,
# hook.dead, ...) fails CI. Per-system invocations keep the failure pinpointed.
for system in kvs minizk minihdfs; do
  ./build-ci/tools/wdg_lint --system "${system}" --warnings-as-errors --summary
done
# The seeded-broken fixture must still fail under the same flags; a lint that
# stops catching its own regression fixtures is worse than no lint.
if ./build-ci/tools/wdg_lint --fixture bad --warnings-as-errors --summary; then
  echo "ci: wdg_lint accepted the bad fixture — the gate is broken" >&2
  exit 1
fi
echo "=== bench smoke: driver scale ==="
# Quick pass over the pooled-executor bench so a scheduler/executor regression
# shows up as a CI diff in BENCH_driver_scale.json, not a silent perf slide.
./build-ci/bench/bench_driver_scale --quick
echo "=== bench smoke: 10k sharded fleet ==="
# Fast fleet-scale tier: the 10k-checker sharded config must hold p99 queue
# delay <= 500 us with live workers capped at shards x per-shard pool size.
# The binary self-checks (--smoke-10k) and exits nonzero on a budget miss, so
# no JSON parsing is needed here; it also writes no JSON, but run it in the
# build tree anyway to keep it away from the committed artifact.
(cd build-ci/bench && ./bench_driver_scale --smoke-10k)
echo "=== bench smoke: 1M-shape sharded fleet (downscaled) ==="
# The million-checker driver shape (dispatch_batch 64, ring 8192), downscaled
# to 200k checkers at the same ~500k/sec offered rate so the gate stays
# sub-second per round: the allocation-free dispatch path must sustain at
# least half the offered rate with p99 queue delay in budget.
(cd build-ci/bench && ./bench_driver_scale --smoke-1m)
echo "=== bench smoke: context read path ==="
# Runs in the build tree so the quick-mode JSON can't clobber the committed
# full-run artifact the trend gate below reads.
(cd build-ci/bench && ./bench_context_read --quick)
echo "=== campaign smoke: fusion fault matrix ==="
# Downscaled fault-matrix campaign (1 seed per class): the fused detector must
# detect all four fault classes, beat-or-tie the best single family on >= 3/4,
# and fire zero false positives anywhere (the binary self-checks and exits
# nonzero). Runs in the build tree so no JSON lands near the committed
# BENCH_fusion.json the trend gate reads.
(cd build-ci && ./tools/wdg_campaign --smoke-fusion)
echo "=== supervised smoke: wdogd escalation under a wedged process ==="
# The §3.3 scenario the in-process plane cannot catch for itself: a kvs node
# plus its watchdog driver wedge on an injected disk hang, kicks stop, and
# the out-of-process wdogd must walk its ladder. wdogd exits nonzero when no
# escalation fires. Runs in the build tree so the quick-mode JSON can't
# clobber the committed full-run artifact the trend gate reads.
(cd build-ci && ./tools/wdogd --quick --system kvs)
echo "=== bench trend gate ==="
# Headline metrics from the committed full-run artifacts; fails the build if
# one regressed >25% against its best of the last three BENCH_TREND.json
# entries (WDG_BENCH_TREND_THRESHOLD overrides). --dry-run: CI gates but only
# a deliberate full bench run appends to the trend.
python3 tools/bench_trend.py --dry-run
run_leg build-ci-asan address "$@"
# TSan leg: the concurrency suites that hammer the sharded context store and
# batched hook flush, plus the pooled scheduler/executor scale suite
# (abandonment, backpressure, and shutdown races), the chaos/soak tier that
# storms the adaptive autoscaler + deadline budgets with injected faults, and
# the signal-suite/fusion tests (FusionDetector::OnFailure runs on scheduler
# threads; the suite test drives a live driver against a publisher thread).
run_leg build-ci-tsan thread -R 'context_concurrency|stress_test|driver_scale|driver_chaos|supervisor|detectors_signal' "$@"

echo "ci: all three legs green"
