// wdg_campaign: run the fault-injection evaluation campaign from the command
// line with configurable scenarios, seeds and detector options.
//
//   wdg_campaign [--scenario <substring>] [--seeds N] [--validation]
//                [--suppress] [--observe-ms N] [--list]
//
// Examples:
//   wdg_campaign --list
//   wdg_campaign --scenario replication --seeds 3
//   wdg_campaign --validation --suppress
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/eval/campaign.h"
#include "src/eval/scenario.h"
#include "src/eval/table.h"

namespace {

struct CliOptions {
  std::string scenario_filter;
  int seeds = 1;
  bool validation = false;
  bool suppress = false;
  wdg::DurationNs observe = wdg::Ms(1000);
  bool list_only = false;
};

void PrintUsage() {
  std::printf(
      "usage: wdg_campaign [--scenario <substring>] [--seeds N] [--validation]\n"
      "                    [--suppress] [--observe-ms N] [--list]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--scenario") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      options.scenario_filter = value;
    } else if (arg == "--seeds") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      options.seeds = std::atoi(value);
    } else if (arg == "--observe-ms") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      options.observe = wdg::Ms(std::atoll(value));
    } else if (arg == "--validation") {
      options.validation = true;
    } else if (arg == "--suppress") {
      options.suppress = true;
    } else if (arg == "--list") {
      options.list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return options.seeds >= 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, cli)) {
    PrintUsage();
    return 2;
  }

  const auto catalog = wdg::KvsScenarioCatalog();
  if (cli.list_only) {
    wdg::TablePrinter table({{"scenario", 26}, {"kind", 12}, {"description", 60}});
    table.PrintHeader();
    for (const wdg::Scenario& s : catalog) {
      const char* kind = s.fault_free ? "control"
                         : s.benign   ? "benign"
                         : s.crash    ? "crash"
                                      : (s.client_visible ? "client-vis" : "background");
      table.PrintRow({s.name, kind, s.description});
    }
    return 0;
  }

  std::vector<wdg::TrialResult> results;
  for (int seed = 0; seed < cli.seeds; ++seed) {
    wdg::TrialOptions trial;
    trial.seed = 42 + static_cast<uint64_t>(seed) * 1000;
    trial.observe = cli.observe;
    trial.enable_validation = cli.validation;
    trial.suppress_unconfirmed = cli.suppress;
    for (const wdg::Scenario& scenario : catalog) {
      if (!cli.scenario_filter.empty() &&
          scenario.name.find(cli.scenario_filter) == std::string::npos) {
        continue;
      }
      std::printf("running %-26s seed=%d...\n", scenario.name.c_str(), seed);
      std::fflush(stdout);
      results.push_back(wdg::RunTrial(scenario, trial));
    }
  }
  if (results.empty()) {
    std::fprintf(stderr, "no scenarios matched '%s'\n", cli.scenario_filter.c_str());
    return 1;
  }

  // Per-trial detail.
  std::printf("\n");
  wdg::TablePrinter detail({{"scenario", 26}, {"detector", 11}, {"detected", 9},
                            {"latency", 14}, {"localization", 12}, {"false alarms", 13}});
  detail.PrintHeader();
  for (const wdg::TrialResult& result : results) {
    for (const auto& [label, outcome] : result.outcomes) {
      if (!outcome.enabled || (!outcome.detected && outcome.false_alarms == 0)) {
        continue;
      }
      detail.PrintRow(
          {result.scenario, label, outcome.detected ? "yes" : "no",
           outcome.detected
               ? wdg::StrFormat("%.1f logical s", wdg::ToLogicalSeconds(outcome.latency))
               : "-",
           outcome.detected ? wdg::LocalizationLevelName(outcome.localization) : "-",
           wdg::StrFormat("%d", outcome.false_alarms)});
    }
  }
  detail.PrintRule();

  // Aggregate summary.
  const auto aggregates = wdg::Aggregate(results);
  std::printf("\n");
  wdg::TablePrinter summary({{"detector", 12}, {"completeness", 13}, {"accuracy", 9},
                             {"pinpoint op", 12}, {"median latency", 15}});
  summary.PrintHeader();
  for (const auto& [label, agg] : aggregates) {
    summary.PrintRow(
        {label,
         wdg::StrFormat("%d/%d (%3.0f%%)", agg.detected, agg.fault_trials,
                        agg.Completeness() * 100),
         wdg::StrFormat("%3.0f%%", agg.Accuracy() * 100),
         wdg::StrFormat("%3.0f%%", agg.PinpointRate(wdg::LocalizationLevel::kOperation) * 100),
         agg.detected > 0
             ? wdg::StrFormat("%.1f logical s", wdg::ToLogicalSeconds(agg.MedianLatency()))
             : "-"});
  }
  summary.PrintRule();
  return 0;
}
