// wdg_campaign: run the fault-injection evaluation campaign from the command
// line with configurable scenarios, seeds and detector options.
//
//   wdg_campaign [--scenario <substring>] [--seeds N] [--validation]
//                [--suppress] [--observe-ms N] [--list]
//                [--fault-matrix | --smoke-fusion] [--matrix-out <path>]
//
// Examples:
//   wdg_campaign --list
//   wdg_campaign --scenario replication --seeds 3
//   wdg_campaign --validation --suppress
//   wdg_campaign --fault-matrix --seeds 3 --matrix-out BENCH_fusion.json
//   wdg_campaign --smoke-fusion          # CI gate: nonzero exit on regression
//
// Flag grammar and --list rendering live in src/eval/campaign_cli.{h,cc} so
// they are unit-tested; this file is just wiring.
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/eval/campaign.h"
#include "src/eval/campaign_cli.h"
#include "src/eval/fault_matrix.h"
#include "src/eval/scenario.h"
#include "src/eval/table.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const wdg::CampaignParseResult parsed = wdg::ParseCampaignArgs(args);
  if (!parsed.ok) {
    std::fprintf(stderr, "%s\n", parsed.error.c_str());
    std::fputs(wdg::CampaignUsage().c_str(), stderr);
    return 2;
  }
  const wdg::CampaignCliOptions& cli = parsed.options;
  if (cli.show_help) {
    std::fputs(wdg::CampaignUsage().c_str(), stdout);
    return 0;
  }

  const auto catalog = wdg::KvsScenarioCatalog();
  if (cli.list_only) {
    std::fputs(wdg::FormatScenarioList(catalog).c_str(), stdout);
    return 0;
  }

  if (cli.fault_matrix) {
    wdg::FaultMatrixOptions matrix;
    matrix.seeds = cli.seeds;
    matrix.quick = cli.smoke_fusion;
    matrix.progress = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
      std::fflush(stdout);
    };
    const wdg::FaultMatrixResult result = wdg::RunFaultMatrix(matrix);
    std::printf("\n%s", wdg::FormatFaultMatrix(result).c_str());
    if (!cli.matrix_out.empty()) {
      const wdg::Status written = wdg::WriteFaultMatrixJson(result, cli.matrix_out);
      if (!written.ok()) {
        std::fprintf(stderr, "%s\n", written.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", cli.matrix_out.c_str());
    }
    if (cli.smoke_fusion && !result.MeetsAcceptance()) {
      std::fprintf(stderr,
                   "smoke-fusion FAILED: detected %d/%d classes, dominated %d, "
                   "%d false positives\n",
                   result.fused_detected, result.fault_classes,
                   result.dominated_classes, result.total_false_positives);
      return 1;
    }
    return 0;
  }

  std::vector<wdg::TrialResult> results;
  for (int seed = 0; seed < cli.seeds; ++seed) {
    wdg::TrialOptions trial;
    trial.seed = 42 + static_cast<uint64_t>(seed) * 1000;
    trial.observe = cli.observe;
    trial.enable_validation = cli.validation;
    trial.suppress_unconfirmed = cli.suppress;
    for (const wdg::Scenario& scenario : catalog) {
      if (!cli.scenario_filter.empty() &&
          scenario.name.find(cli.scenario_filter) == std::string::npos) {
        continue;
      }
      std::printf("running %-26s seed=%d...\n", scenario.name.c_str(), seed);
      std::fflush(stdout);
      results.push_back(wdg::RunTrial(scenario, trial));
    }
  }
  if (results.empty()) {
    std::fprintf(stderr, "no scenarios matched '%s'\n", cli.scenario_filter.c_str());
    return 1;
  }

  // Per-trial detail.
  std::printf("\n");
  wdg::TablePrinter detail({{"scenario", 26}, {"detector", 11}, {"detected", 9},
                            {"latency", 14}, {"localization", 12}, {"false alarms", 13}});
  detail.PrintHeader();
  for (const wdg::TrialResult& result : results) {
    for (const auto& [label, outcome] : result.outcomes) {
      if (!outcome.enabled || (!outcome.detected && outcome.false_alarms == 0)) {
        continue;
      }
      detail.PrintRow(
          {result.scenario, label, outcome.detected ? "yes" : "no",
           outcome.detected
               ? wdg::StrFormat("%.1f logical s", wdg::ToLogicalSeconds(outcome.latency))
               : "-",
           outcome.detected ? wdg::LocalizationLevelName(outcome.localization) : "-",
           wdg::StrFormat("%d", outcome.false_alarms)});
    }
  }
  detail.PrintRule();

  // Aggregate summary.
  const auto aggregates = wdg::Aggregate(results);
  std::printf("\n");
  wdg::TablePrinter summary({{"detector", 12}, {"completeness", 13}, {"accuracy", 9},
                             {"pinpoint op", 12}, {"median latency", 15}});
  summary.PrintHeader();
  for (const auto& [label, agg] : aggregates) {
    summary.PrintRow(
        {label,
         wdg::StrFormat("%d/%d (%3.0f%%)", agg.detected, agg.fault_trials,
                        agg.Completeness() * 100),
         wdg::StrFormat("%3.0f%%", agg.Accuracy() * 100),
         wdg::StrFormat("%3.0f%%", agg.PinpointRate(wdg::LocalizationLevel::kOperation) * 100),
         agg.detected > 0
             ? wdg::StrFormat("%.1f logical s", wdg::ToLogicalSeconds(agg.MedianLatency()))
             : "-"});
  }
  summary.PrintRule();
  return 0;
}
